//! The assembled simulation system: structure + basis + grid + batches +
//! tabulated basis values.
//!
//! Basis values (and gradients) at grid points are tabulated once, batch by
//! batch with cutoff pruning — the "two-level fine-grained parallelism,
//! across batches and grid points" data layout of §4.1.

use crate::basis_cache::BasisValueCache;
use crate::farfield::FarFieldMode;
use crate::screening::{ScreenPlan, ScreeningMode};
use qp_chem::basis::{BasisSet, BasisSettings};
use qp_chem::geometry::Structure;
use qp_chem::grids::{GridSettings, IntegrationGrid};
use qp_chem::multipole::HartreePlan;
use qp_grid::batch::{batches_from_grid, Batch};
use qp_grid::ClusterTree;
use qp_linalg::vecops::dist3;
use std::sync::{Arc, OnceLock};

/// Atoms per leaf of the far-field cluster tree. Small enough that leaf
/// clusters stay compact (tight radii → aggressive multipole acceptance),
/// large enough that the tree has O(n/8) leaves.
const CLUSTER_LEAF_MAX: usize = 8;

/// Default cap on the Hartree-plan table size. The bench systems sit in the
/// tens of MB; systems whose plan would exceed the cap silently use the
/// direct (recompute-per-iteration) Hartree path instead. Override with
/// `QP_HARTREE_PLAN_MAX_MB` (0 disables the plan entirely).
const DEFAULT_PLAN_CAP_MB: usize = 256;

fn plan_cap_bytes() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("QP_HARTREE_PLAN_MAX_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_PLAN_CAP_MB)
            * 1024
            * 1024
    })
}

/// Per-batch table of basis-function values at the batch's grid points.
#[derive(Debug, Clone)]
pub struct BatchBasisTable {
    /// Global indices of the basis functions that reach this batch.
    pub fn_indices: Vec<usize>,
    /// `values[p * fn_indices.len() + k]` = χ of function `k` at point `p`
    /// (points in batch order).
    pub values: Vec<f64>,
    /// Gradients, same layout × 3 (x, y, z fastest).
    pub gradients: Vec<f64>,
}

impl BatchBasisTable {
    /// Value of pruned function `k` at batch point `p`.
    #[inline]
    pub fn value(&self, p: usize, k: usize) -> f64 {
        self.values[p * self.fn_indices.len() + k]
    }

    /// Gradient of pruned function `k` at batch point `p`.
    #[inline]
    pub fn gradient(&self, p: usize, k: usize) -> [f64; 3] {
        let base = (p * self.fn_indices.len() + k) * 3;
        [
            self.gradients[base],
            self.gradients[base + 1],
            self.gradients[base + 2],
        ]
    }
}

/// A ready-to-run simulation system.
pub struct System {
    /// The molecular structure.
    pub structure: Structure,
    /// The NAO basis.
    pub basis: BasisSet,
    /// The integration grid.
    pub grid: IntegrationGrid,
    /// The grid's batches (grid-adapted cut-plane method).
    pub batches: Vec<Batch>,
    /// Lazily built, LRU-capped per-batch basis tables (see
    /// [`crate::basis_cache`]). Grid points never move across SCF/DFPT
    /// iterations, so each table is computed once and reused every
    /// iteration.
    cache: BasisValueCache,
    /// Multipole expansion order used by the Poisson solver.
    pub lmax: usize,
    /// Lazily built per-(point, atom) geometry tables for the Hartree
    /// phases; `None` when the tables would exceed the size cap.
    hartree_plan: OnceLock<Option<Arc<HartreePlan>>>,
    /// Cutoff-sphere screening plan (`Some` when screening is active).
    /// Screening is bit-invisible: every screened path produces the same
    /// bytes as the dense one (see [`crate::screening`]).
    screen: Option<Arc<ScreenPlan>>,
    /// Far-field evaluation mode for the Hartree phases.
    farfield: FarFieldMode,
    /// Lazily built atom-cluster tree (geometry only, shared by every
    /// Poisson solve); `Some` only when `farfield` enables the tree path.
    cluster: OnceLock<Option<Arc<ClusterTree>>>,
}

impl System {
    /// Build a system with explicit settings and [`ScreeningMode::Auto`].
    pub fn build(
        structure: Structure,
        basis_settings: BasisSettings,
        grid_settings: &GridSettings,
        max_batch: usize,
        lmax: usize,
    ) -> Self {
        Self::build_with_screening(
            structure,
            basis_settings,
            grid_settings,
            max_batch,
            lmax,
            ScreeningMode::Auto,
        )
    }

    /// [`System::build`] with explicit screening control
    /// (`--screening on|off|auto`) and [`FarFieldMode::Auto`].
    pub fn build_with_screening(
        structure: Structure,
        basis_settings: BasisSettings,
        grid_settings: &GridSettings,
        max_batch: usize,
        lmax: usize,
        mode: ScreeningMode,
    ) -> Self {
        Self::build_with_modes(
            structure,
            basis_settings,
            grid_settings,
            max_batch,
            lmax,
            mode,
            FarFieldMode::Auto,
        )
    }

    /// [`System::build`] with explicit screening *and* far-field control
    /// (`--screening on|off|auto`, `--farfield direct|tree|auto`).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_modes(
        structure: Structure,
        basis_settings: BasisSettings,
        grid_settings: &GridSettings,
        max_batch: usize,
        lmax: usize,
        mode: ScreeningMode,
        farfield: FarFieldMode,
    ) -> Self {
        let basis = BasisSet::build(&structure, basis_settings);
        let grid = IntegrationGrid::build(&structure, grid_settings);
        let batches = batches_from_grid(&grid, max_batch);
        let cache = BasisValueCache::from_env(batches.len(), basis.len());
        let screen = mode
            .enabled(structure.len())
            .then(|| Arc::new(ScreenPlan::build(&structure, &basis)));
        System {
            structure,
            basis,
            grid,
            batches,
            cache,
            lmax,
            hartree_plan: OnceLock::new(),
            screen,
            farfield,
            cluster: OnceLock::new(),
        }
    }

    /// Convenience: light basis, light grid, paper-typical batch size.
    pub fn light(structure: Structure) -> Self {
        System::build(
            structure,
            BasisSettings::Light,
            &GridSettings::light(),
            200,
            4,
        )
    }

    /// The basis table for batch `bid`, from cache or freshly tabulated.
    pub fn table(&self, bid: usize) -> Arc<BatchBasisTable> {
        self.cache
            .get(bid, || self.tabulate_batch(&self.batches[bid]))
    }

    /// The active screening plan, if any.
    pub fn screen(&self) -> Option<&Arc<ScreenPlan>> {
        self.screen.as_ref()
    }

    /// The far-field evaluation mode this system was built with.
    pub fn farfield_mode(&self) -> FarFieldMode {
        self.farfield
    }

    /// The atom-cluster tree for hierarchical far-field evaluation, built
    /// once on first use. `None` when the mode resolves to the direct path
    /// for this structure — the choice depends only on the mode and atom
    /// count, never on thread count or timing.
    pub fn farfield_tree(&self) -> Option<&Arc<ClusterTree>> {
        self.cluster
            .get_or_init(|| {
                self.farfield.enabled(self.structure.len()).then(|| {
                    let centers: Vec<[f64; 3]> =
                        self.structure.atoms.iter().map(|a| a.position).collect();
                    Arc::new(ClusterTree::build(&centers, CLUSTER_LEAF_MAX))
                })
            })
            .as_ref()
    }

    /// The underlying basis-value cache (hit rates, residency, capacity).
    pub fn basis_cache(&self) -> &BasisValueCache {
        &self.cache
    }

    /// Build every batch table up front, in parallel (the SCF driver does
    /// this implicitly on its first assembly; benches use it explicitly to
    /// separate cold from warm timings).
    pub fn warm_tables(&self) {
        // Tabulating a batch is radial-spline + harmonics work per
        // (point, function) — always worth fanning out.
        qp_par::for_each_index_hinted(self.batches.len(), 1_000_000, |b| {
            self.table(b);
        });
    }

    /// The Hartree geometry plan (per-point distances, harmonics, spline
    /// brackets), built once on first use and shared by the SCF and DFPT
    /// potential phases. Returns `None` when the tables would exceed
    /// `QP_HARTREE_PLAN_MAX_MB` — the choice depends only on system size
    /// and environment, never on the thread count, so both paths stay
    /// deterministic.
    pub fn hartree_plan(&self) -> Option<Arc<HartreePlan>> {
        self.hartree_plan
            .get_or_init(|| {
                let est =
                    HartreePlan::estimate_bytes(self.grid.len(), self.structure.len(), self.lmax);
                if est <= plan_cap_bytes() && plan_cap_bytes() > 0 {
                    Some(Arc::new(HartreePlan::build(
                        &self.structure,
                        &self.grid,
                        self.lmax,
                    )))
                } else {
                    None
                }
            })
            .clone()
    }

    fn tabulate_batch(&self, batch: &Batch) -> BatchBasisTable {
        let basis = &self.basis;
        // Prune: functions whose support reaches any point of the batch.
        let radius = batch
            .points
            .iter()
            .map(|p| dist3(p.position, batch.center))
            .fold(0.0, f64::max);
        // The cell-list query returns exactly the linear scan's list (same
        // strict predicate, same order), just in O(neighbourhood).
        let fn_indices = match self.screen.as_deref() {
            Some(plan) => plan.functions_near(basis, batch.center, radius),
            None => basis.functions_near(batch.center, radius),
        };
        let nf = fn_indices.len();
        let np = batch.points.len();
        let mut values = vec![0.0; np * nf];
        let mut gradients = vec![0.0; np * nf * 3];
        for (pi, pt) in batch.points.iter().enumerate() {
            for (ki, &fi) in fn_indices.iter().enumerate() {
                let f = &basis.functions[fi];
                let v = f.eval(pt.position);
                values[pi * nf + ki] = v;
                if v != 0.0 {
                    let g = f.eval_grad(pt.position);
                    let base = (pi * nf + ki) * 3;
                    gradients[base] = g[0];
                    gradients[base + 1] = g[1];
                    gradients[base + 2] = g[2];
                }
            }
        }
        BatchBasisTable {
            fn_indices,
            values,
            gradients,
        }
    }

    /// Number of basis functions.
    pub fn n_basis(&self) -> usize {
        self.basis.len()
    }

    /// Number of grid points.
    pub fn n_points(&self) -> usize {
        self.grid.len()
    }

    /// Number of electrons.
    pub fn n_electrons(&self) -> u32 {
        self.structure.num_electrons()
    }

    /// Number of occupied orbitals (closed shell).
    pub fn n_occupied(&self) -> usize {
        (self.n_electrons() as usize).div_ceil(2)
    }

    /// Density at the points of batch `bid` from a density matrix, in GEMM
    /// form: gather the batch-local block `P_loc`, compute `Y = X·P_loc`
    /// with the blocked Level-3 kernel (`X` = the `np×nf` basis-value
    /// table), then `n(p) = X_p · Y_p` per point.
    ///
    /// The GEMM runs serially here — callers fan out over batches, so the
    /// per-batch work is the parallel grain — and both the kernel and the
    /// final dot use a fixed accumulation order, keeping the result
    /// bit-identical at any thread count.
    pub fn batch_density(&self, bid: usize, p_mat: &qp_linalg::DMatrix) -> Vec<f64> {
        let batch = &self.batches[bid];
        let table = self.table(bid);
        let nf = table.fn_indices.len();
        let np = batch.points.len();
        if nf == 0 {
            return vec![0.0; np];
        }
        let p_loc = p_mat.gather_square(&table.fn_indices);
        let mut y = vec![0.0; np * nf];
        qp_linalg::gemm::gemm(np, nf, nf, &table.values, p_loc.as_slice(), &mut y, false);
        (0..np)
            .map(|pi| {
                let row = &table.values[pi * nf..(pi + 1) * nf];
                let yrow = &y[pi * nf..(pi + 1) * nf];
                row.iter().zip(yrow.iter()).map(|(x, v)| x * v).sum()
            })
            .collect()
    }

    /// Evaluate the density at every grid point from a density matrix
    /// (batch-local, pruned): `n(p) = Σ_{μν} P_{μν} χ_μ(p) χ_ν(p)`.
    ///
    /// This is the same contraction as the Sumup phase; this uninstrumented
    /// version is used by the SCF loop.
    ///
    /// Fused super-batch form: one region fans the batches out over the
    /// pool, and each worker writes its batch's densities straight into the
    /// shared output through the batch's grid indices — batches partition
    /// the grid, so the write sets are disjoint and there is no per-batch
    /// allocation or serial merge pass. The per-batch arithmetic is exactly
    /// [`batch_density`](Self::batch_density) (the oracle the property
    /// tests compare against), and every value lands in the same slot
    /// regardless of scheduling, so the result is bit-identical at any
    /// thread count.
    pub fn density_on_grid(&self, p_mat: &qp_linalg::DMatrix) -> Vec<f64> {
        let mut density = vec![0.0; self.grid.len()];
        struct OutPtr(*mut f64);
        unsafe impl Send for OutPtr {}
        unsafe impl Sync for OutPtr {}
        let out = OutPtr(density.as_mut_ptr());
        // Cost hint: the batch GEMM dominates at 2·np·nf² flops; assume a
        // few flops/ns so small systems run inline, bench systems fan out.
        let avg_np = self.grid.len() / self.batches.len().max(1);
        let nb = self.n_basis();
        let est = ((avg_np * nb * nb) / 2).max(1) as u64;
        let out = &out;
        qp_par::for_each_index_hinted(self.batches.len(), est, |bid| {
            let local = self.batch_density(bid, p_mat);
            let batch = &self.batches[bid];
            for (pi, &v) in local.iter().enumerate() {
                // SAFETY: grid_index values are unique across all batches
                // (batches partition the grid), so writes never alias.
                unsafe {
                    *out.0.add(batch.points[pi].grid_index as usize) = v;
                }
            }
        });
        density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_chem::structures::water;
    use qp_linalg::DMatrix;

    fn small_system() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn tables_cover_all_batches() {
        let s = small_system();
        assert_eq!(s.basis_cache().len(), s.batches.len());
        for b in s.batches.iter() {
            let t = s.table(b.id);
            assert_eq!(t.values.len(), b.points.len() * t.fn_indices.len());
            assert!(!t.fn_indices.is_empty(), "water batches see some functions");
        }
    }

    #[test]
    fn repeated_lookup_hits_cache() {
        let s = small_system();
        s.warm_tables();
        let (h0, m0, _) = crate::basis_cache::cache_counters();
        for b in s.batches.iter() {
            s.table(b.id);
        }
        let (h1, m1, _) = crate::basis_cache::cache_counters();
        assert_eq!(h1 - h0, s.batches.len() as u64, "all warm lookups hit");
        assert_eq!(m1, m0, "no rebuild after warm-up");
    }

    #[test]
    fn tabulated_values_match_direct_evaluation() {
        let s = small_system();
        let b = &s.batches[0];
        let t = s.table(0);
        for (pi, pt) in b.points.iter().enumerate().take(5) {
            for (ki, &fi) in t.fn_indices.iter().enumerate() {
                let direct = s.basis.functions[fi].eval(pt.position);
                assert!((t.value(pi, ki) - direct).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn occupied_count_closed_shell() {
        let s = small_system();
        assert_eq!(s.n_electrons(), 10);
        assert_eq!(s.n_occupied(), 5);
    }

    #[test]
    fn density_from_identity_matrix_is_sum_of_squares() {
        let s = small_system();
        let p = DMatrix::identity(s.n_basis());
        let n = s.density_on_grid(&p);
        // At each point, n = Σ_μ χ_μ² >= 0.
        assert!(n.iter().all(|&v| v >= -1e-14));
        // Integrates to the number of basis functions (each normalized).
        let total = s.grid.integrate_values(&n);
        assert!(
            (total - s.n_basis() as f64).abs() < 0.15,
            "∫Σχ² = {total} vs {}",
            s.n_basis()
        );
    }
}
