//! Derived response properties (the last box of the paper's Fig. 1:
//! "polarizability, dielectric constant").
//!
//! From the converged polarizability tensor `α` the paper's pipeline reports
//! the experimentally comparable quantities: isotropic polarizability,
//! polarizability anisotropy, and — for condensed/molecular-ensemble
//! estimates — the Clausius–Mossotti dielectric constant.

use crate::scf::ScfResult;
use crate::system::System;
use qp_linalg::DMatrix;

/// Isotropic (mean) polarizability `ᾱ = Tr[α]/3` (Bohr³).
pub fn isotropic_polarizability(alpha: &DMatrix) -> f64 {
    assert_eq!((alpha.rows(), alpha.cols()), (3, 3));
    alpha.trace() / 3.0
}

/// Polarizability anisotropy
/// `Δα² = ½ Σ_{I<J} [3(α_IJ² + α_JI²)/2 + (α_II − α_JJ)²]` — the quantity
/// Raman depolarization ratios derive from (the application context of the
/// paper's predecessor, ref [37]).
pub fn polarizability_anisotropy(alpha: &DMatrix) -> f64 {
    assert_eq!((alpha.rows(), alpha.cols()), (3, 3));
    let mut acc = 0.0;
    for i in 0..3 {
        for j in (i + 1)..3 {
            acc += (alpha[(i, i)] - alpha[(j, j)]).powi(2)
                + 1.5 * (alpha[(i, j)].powi(2) + alpha[(j, i)].powi(2)) * 2.0;
        }
    }
    (0.5 * acc).sqrt()
}

/// Clausius–Mossotti dielectric constant for number density `n`
/// (molecules/Bohr³): `ε = (1 + 8πnᾱ/3)/(1 − 4πnᾱ/3)`.
///
/// Returns `None` when the density exceeds the Clausius–Mossotti
/// "polarization catastrophe" bound (`4πnᾱ/3 ≥ 1`).
pub fn clausius_mossotti(alpha_iso: f64, number_density: f64) -> Option<f64> {
    let x = 4.0 * std::f64::consts::PI * number_density * alpha_iso / 3.0;
    if x >= 1.0 {
        return None;
    }
    Some((1.0 + 2.0 * x) / (1.0 - x))
}

/// Total (electronic + nuclear) dipole moment of the ground state (a.u.).
pub fn dipole_moment(system: &System, ground: &ScfResult) -> [f64; 3] {
    let mut mu = [0.0; 3];
    // Nuclear part: +Σ Z_I R_I.
    for atom in &system.structure.atoms {
        for d in 0..3 {
            mu[d] += atom.element.z() as f64 * atom.position[d];
        }
    }
    // Electronic part: −∫ r n(r).
    for (p, &n) in system.grid.points.iter().zip(ground.density.iter()) {
        for d in 0..3 {
            mu[d] -= p.weight * p.position[d] * n;
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{scf, ScfOptions};
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn diag(a: f64, b: f64, c: f64) -> DMatrix {
        let mut m = DMatrix::zeros(3, 3);
        m[(0, 0)] = a;
        m[(1, 1)] = b;
        m[(2, 2)] = c;
        m
    }

    #[test]
    fn isotropic_is_trace_third() {
        assert_eq!(isotropic_polarizability(&diag(3.0, 6.0, 9.0)), 6.0);
    }

    #[test]
    fn anisotropy_zero_for_isotropic_tensor() {
        assert_eq!(polarizability_anisotropy(&diag(5.0, 5.0, 5.0)), 0.0);
        // Axial tensor: Δα = |α_par - α_perp|.
        let da = polarizability_anisotropy(&diag(7.0, 4.0, 4.0));
        assert!((da - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clausius_mossotti_limits() {
        // Dilute gas: ε → 1 + 4πnᾱ.
        let n = 1e-6;
        let a = 10.0;
        let eps = clausius_mossotti(a, n).unwrap();
        let dilute = 1.0 + 4.0 * std::f64::consts::PI * n * a;
        assert!((eps - dilute).abs() < 1e-6);
        // Catastrophe bound.
        assert!(clausius_mossotti(10.0, 1.0).is_none());
        // Liquid-water-like numbers: n = 0.0050 molecules/Bohr^3, ᾱ ≈ 9.8
        // Bohr^3 gives ε ≈ 1.8 (the electronic ε_∞ of water is 1.78).
        let eps_water = clausius_mossotti(9.8, 0.0050).unwrap();
        assert!(eps_water > 1.5 && eps_water < 2.1, "ε = {eps_water}");
    }

    #[test]
    fn water_dipole_points_along_symmetry_axis() {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        let sys = System::build(water(), BasisSettings::Light, &gs, 150, 2);
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let mu = dipole_moment(&sys, &ground);
        // Our water sits in the x-y plane, symmetric about y: μ_x ≈ μ_z ≈ 0,
        // μ_y > 0 (H atoms at +y pull electron density, nuclei dominate +y).
        assert!(mu[0].abs() < 0.05, "μ_x = {}", mu[0]);
        assert!(mu[2].abs() < 0.05, "μ_z = {}", mu[2]);
        assert!(
            mu[1].abs() > 0.2 && mu[1].abs() < 2.0,
            "μ_y = {} (experiment: 0.73 a.u.)",
            mu[1]
        );
    }
}
