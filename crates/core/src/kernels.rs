//! The four OpenCL-accelerated DFPT phases (§4.1) expressed through the
//! `qp-cl` runtime, with the memory-access structure §3.1/Fig. 9(b)
//! compares made explicit:
//!
//! * **DM**    — `P¹` construction (dense matrix algebra)
//! * **Sumup** — `n¹(r)` real-space integration: 2 kernels in the artifact;
//!   here one launch per invocation over all batches, reading `P¹` either
//!   from the *small dense local* block (proposed mapping) or the *large
//!   sparse global* CSR (existing mapping), with exact access counting
//! * **Rho**   — response-potential solve: spline constructions counted
//!   globally (Fig. 9c), the `(p,m)` Adams–Moulton loop runnable nested or
//!   collapsed (§4.4)
//! * **H**     — `H¹` matrix elements, same dense/sparse dichotomy
//!
//! Each instrumented kernel is verified against the uninstrumented physics
//! path in the test suite — the counters change, the numbers must not.

use crate::system::System;
use qp_cl::queue::CommandQueue;
use qp_cl::LaunchReport;
use qp_linalg::{CsrMatrix, DMatrix};

/// How a phase accesses the (response) density/Hamiltonian matrix — the
/// §3.1 dichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixAccess {
    /// Small dense local block (proposed locality-enhancing mapping):
    /// one memory access per element.
    DenseLocal,
    /// Large sparse global CSR (existing load-balancing mapping): ≥ 3
    /// accesses per element fetch.
    SparseGlobal,
}

/// **Sumup** phase: `n¹(p) = Σ_{μν} P¹_μν χ_μ(p) χ_ν(p)` over all batches,
/// one work-group per batch, one work-item per grid point (§4.1), with
/// access counting for the chosen matrix representation.
pub fn sumup_phase(
    queue: &CommandQueue,
    system: &System,
    p_dense: &DMatrix,
    mode: MatrixAccess,
) -> (Vec<f64>, LaunchReport) {
    let p_sparse = match mode {
        MatrixAccess::SparseGlobal => Some(CsrMatrix::from_dense(p_dense, 1e-14)),
        MatrixAccess::DenseLocal => None,
    };
    let (per_batch, report) =
        queue.launch_map(&format!("sumup[{mode:?}]"), system.batches.len(), |ctx| {
            let batch = &system.batches[ctx.group_id];
            let table = system.table(ctx.group_id);
            let nf = table.fn_indices.len();
            ctx.occupy_items(batch.points.len());
            let mut local = vec![0.0; batch.points.len()];
            for (pi, out) in local.iter_mut().enumerate() {
                let row = &table.values[pi * nf..(pi + 1) * nf];
                // χ values stream from off-chip once per point.
                ctx.counters.read_offchip(nf as u64);
                let mut acc = 0.0;
                for (a, &fa) in table.fn_indices.iter().enumerate() {
                    let va = row[a];
                    if va == 0.0 {
                        continue;
                    }
                    for (b, &fb) in table.fn_indices.iter().enumerate() {
                        let vb = row[b];
                        if vb == 0.0 {
                            continue;
                        }
                        let p_val = match (&p_sparse, mode) {
                            (Some(csr), MatrixAccess::SparseGlobal) => {
                                let (v, accesses) = csr.get_counted(fa, fb);
                                ctx.counters.read_offchip(accesses as u64);
                                v
                            }
                            _ => {
                                ctx.counters.read_offchip(1);
                                p_dense[(fa, fb)]
                            }
                        };
                        acc += p_val * va * vb;
                        ctx.counters.flop(3);
                    }
                }
                *out = acc;
                ctx.counters.write_offchip(1);
            }
            (ctx.group_id, local)
        });

    let mut n1 = vec![0.0; system.n_points()];
    for (bid, local) in per_batch {
        let batch = &system.batches[bid];
        for (pi, &v) in local.iter().enumerate() {
            n1[batch.points[pi].grid_index as usize] = v;
        }
    }
    (n1, report)
}

/// **H** phase: `H¹_μν += Σ_p w_p v¹(p) χ_μ(p) χ_ν(p)` over all batches,
/// with matrix-update access counting.
pub fn h_phase(
    queue: &CommandQueue,
    system: &System,
    v1: &[f64],
    mode: MatrixAccess,
) -> (DMatrix, LaunchReport) {
    assert_eq!(v1.len(), system.n_points());
    let nb = system.n_basis();
    let (blocks, report) =
        queue.launch_map(&format!("h1[{mode:?}]"), system.batches.len(), |ctx| {
            let batch = &system.batches[ctx.group_id];
            let table = system.table(ctx.group_id);
            let nf = table.fn_indices.len();
            ctx.occupy_items(batch.points.len());
            let mut block = DMatrix::zeros(nf, nf);
            for (pi, pt) in batch.points.iter().enumerate() {
                let gi = pt.grid_index as usize;
                let w = system.grid.points[gi].weight * v1[gi];
                ctx.counters.read_offchip(1 + nf as u64); // v1 + χ row
                if w == 0.0 {
                    continue;
                }
                let row = &table.values[pi * nf..(pi + 1) * nf];
                for a in 0..nf {
                    let va = row[a];
                    if va == 0.0 {
                        continue;
                    }
                    for b in a..nf {
                        block[(a, b)] += w * va * row[b];
                        ctx.counters.flop(3);
                        // Matrix-element update cost: 1 access dense, >= 3
                        // sparse (row walk) — the Fig. 9(b) H¹ effect.
                        match mode {
                            MatrixAccess::DenseLocal => ctx.counters.write_offchip(1),
                            MatrixAccess::SparseGlobal => ctx.counters.write_offchip(3),
                        }
                    }
                }
            }
            (ctx.group_id, block)
        });

    let mut h1 = DMatrix::zeros(nb, nb);
    for (bid, block) in blocks {
        let table = system.table(bid);
        for (a, &fa) in table.fn_indices.iter().enumerate() {
            for (b, &fb) in table.fn_indices.iter().enumerate().skip(a) {
                h1[(fa, fb)] += block[(a, b)];
            }
        }
    }
    for i in 0..nb {
        for j in (i + 1)..nb {
            h1[(j, i)] = h1[(i, j)];
        }
    }
    (h1, report)
}

/// **DM** phase: `P¹ = Σ_i 2 (C¹_i Cᵀ_i + C_i C¹ᵀ_i)` with flop/traffic
/// accounting (one work-group per occupied orbital).
pub fn dm_phase(
    queue: &CommandQueue,
    c: &DMatrix,
    c1: &DMatrix,
    n_occ: usize,
) -> (DMatrix, LaunchReport) {
    let nb = c.rows();
    let (partials, report) = queue.launch_map("dm", n_occ, |ctx| {
        let i = ctx.group_id;
        ctx.occupy_items(nb);
        ctx.counters.read_offchip(2 * nb as u64);
        let mut p = DMatrix::zeros(nb, nb);
        for mu in 0..nb {
            let c1_mu = c1[(mu, i)];
            let c_mu = c[(mu, i)];
            for nu in 0..nb {
                p[(mu, nu)] += 2.0 * (c1_mu * c[(nu, i)] + c_mu * c1[(nu, i)]);
                ctx.counters.flop(4);
            }
        }
        ctx.counters.write_offchip((nb * nb) as u64);
        p
    });
    let mut p1 = DMatrix::zeros(nb, nb);
    for p in partials {
        p1.axpy(1.0, &p).expect("same dims");
    }
    (p1, report)
}

/// **Rho** phase bookkeeping: solve the response Poisson problem while
/// counting cubic-spline constructions (Fig. 9c) and recording the
/// Adams–Moulton `(p,m)` loop occupancy in nested or collapsed form (§4.4).
pub struct RhoPhaseOutput {
    /// The response electrostatic potential at every grid point.
    pub v1_es: Vec<f64>,
    /// Spline constructions performed during this phase.
    pub splines_constructed: u64,
    /// Launch report (interpolation kernel).
    pub report: LaunchReport,
    /// Lane occupancy of the `(p,m)` integrator loop.
    pub integrator_occupancy: f64,
}

/// Run the Rho phase. `collapsed` selects the §4.4 loop form.
pub fn rho_phase(
    queue: &CommandQueue,
    system: &System,
    n1: &[f64],
    collapsed: bool,
) -> RhoPhaseOutput {
    use qp_chem::multipole::{solve_poisson, MultipoleMoments};

    let spline_before = qp_chem::spline::spline_constructions();
    let moments = MultipoleMoments::compute(&system.structure, &system.grid, n1, system.lmax);

    // The (p,m) angular-momentum loop of the Adams-Moulton integrator runs
    // per atom; record its occupancy in the chosen form.
    let pm_counters = qp_cl::counters::KernelCounters::new();
    let wavefront = queue.device().lanes_per_cu;
    for _atom in 0..system.structure.len() {
        if collapsed {
            qp_cl::collapse::run_collapsed(system.lmax, wavefront, &pm_counters, |_, _, _| {});
        } else {
            qp_cl::collapse::run_nested(system.lmax, wavefront, &pm_counters, |_, _, _| {});
        }
    }
    let integrator_occupancy = pm_counters.report("pm", 1).occupancy();

    let hartree = solve_poisson(&system.structure, &system.grid, &moments);
    let splines_constructed = qp_chem::spline::spline_constructions() - spline_before;

    // Interpolation kernel: evaluate v1 at every grid point, batch-parallel.
    let natoms = system.structure.len();
    let (per_batch, report) = queue.launch_map("rho:interp", system.batches.len(), |ctx| {
        let batch = &system.batches[ctx.group_id];
        ctx.occupy_items(batch.points.len());
        let vals: Vec<f64> = batch
            .points
            .iter()
            .map(|pt| {
                // Each point interpolates natoms × n_lm splines.
                ctx.counters
                    .read_offchip((natoms * qp_chem::harmonics::num_harmonics(system.lmax)) as u64);
                ctx.counters
                    .flop((natoms * qp_chem::harmonics::num_harmonics(system.lmax) * 4) as u64);
                hartree.eval_atoms(pt.position, 0..natoms)
            })
            .collect();
        (ctx.group_id, vals)
    });

    let mut v1_es = vec![0.0; system.n_points()];
    for (bid, vals) in per_batch {
        let batch = &system.batches[bid];
        for (pi, &v) in vals.iter().enumerate() {
            v1_es[batch.points[pi].grid_index as usize] = v;
        }
    }
    RhoPhaseOutput {
        v1_es,
        splines_constructed,
        report,
        integrator_occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators;
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;
    use qp_cl::device::{gcn_gpu, sw39010};

    fn sys() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    fn test_matrix(nb: usize) -> DMatrix {
        DMatrix::from_fn(nb, nb, |i, j| {
            let v = 0.1 * ((i * nb + j) as f64).sin();
            v + if i == j { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn sumup_dense_matches_uninstrumented_path() {
        let s = sys();
        let p = {
            let mut m = test_matrix(s.n_basis());
            m.symmetrize();
            m
        };
        let q = CommandQueue::new(gcn_gpu());
        let (n1, _) = sumup_phase(&q, &s, &p, MatrixAccess::DenseLocal);
        let reference = s.density_on_grid(&p);
        for (a, b) in n1.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sumup_sparse_and_dense_agree_numerically() {
        let s = sys();
        let mut p = test_matrix(s.n_basis());
        p.symmetrize();
        let q = CommandQueue::new(sw39010());
        let (dense, rd) = sumup_phase(&q, &s, &p, MatrixAccess::DenseLocal);
        let (sparse, rs) = sumup_phase(&q, &s, &p, MatrixAccess::SparseGlobal);
        for (a, b) in dense.iter().zip(sparse.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // But the sparse path costs strictly more memory accesses — the
        // Fig. 9(b) effect.
        assert!(
            rs.offchip_reads > rd.offchip_reads,
            "sparse {} vs dense {}",
            rs.offchip_reads,
            rd.offchip_reads
        );
    }

    #[test]
    fn h_phase_matches_operator_assembly() {
        let s = sys();
        let v1: Vec<f64> = (0..s.n_points()).map(|i| (i as f64 * 0.01).cos()).collect();
        let q = CommandQueue::new(gcn_gpu());
        let (h1, _) = h_phase(&q, &s, &v1, MatrixAccess::DenseLocal);
        let reference = operators::potential_matrix(&s, &v1);
        assert!(h1.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn h_phase_sparse_writes_cost_more() {
        let s = sys();
        let v1 = vec![1.0; s.n_points()];
        let q = CommandQueue::new(sw39010());
        let (_, rd) = h_phase(&q, &s, &v1, MatrixAccess::DenseLocal);
        let (_, rs) = h_phase(&q, &s, &v1, MatrixAccess::SparseGlobal);
        assert_eq!(rs.offchip_writes, 3 * rd.offchip_writes);
    }

    #[test]
    fn dm_phase_matches_reference() {
        let s = sys();
        let nb = s.n_basis();
        let c = test_matrix(nb);
        let c1 = DMatrix::from_fn(nb, s.n_occupied(), |i, j| 0.01 * (i + j) as f64);
        let q = CommandQueue::new(gcn_gpu());
        let (p1, report) = dm_phase(&q, &c, &c1, s.n_occupied());
        let reference = crate::dfpt::response_density_matrix(&c, &c1, s.n_occupied());
        assert!(p1.max_abs_diff(&reference) < 1e-12);
        assert!(report.flops > 0);
    }

    #[test]
    fn rho_phase_counts_splines_and_occupancy() {
        let s = sys();
        let n1: Vec<f64> = s
            .grid
            .points
            .iter()
            .map(|p| p.position[2] * (-p.position.iter().map(|x| x * x).sum::<f64>()).exp())
            .collect();
        let q = CommandQueue::new(gcn_gpu());
        let nested = rho_phase(&q, &s, &n1, false);
        let collapsed = rho_phase(&q, &s, &n1, true);
        // Same physics.
        for (a, b) in nested.v1_es.iter().zip(collapsed.v1_es.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // Spline count: natoms x (lmax+1)^2 channels per solve.
        let expected = (s.structure.len() * qp_chem::harmonics::num_harmonics(s.lmax)) as u64;
        assert_eq!(nested.splines_constructed, expected);
        // Collapsed form fills lanes better (§4.4).
        assert!(collapsed.integrator_occupancy > nested.integrator_occupancy);
    }
}
