//! Self-recovering drivers: the SCF and distributed DFPT cycles wrapped in
//! checkpoint/restart supervision.
//!
//! The recovery argument rests on determinism: the rank-ordered collectives
//! make every rank hold bit-identical `C¹`/`P¹` at each iteration boundary,
//! so rank 0's checkpoint is a consistent global cut, and an attempt
//! restarted from it replays the remaining iterations **bit-exactly** —
//! a run that loses a rank mid-DFPT lands on the same polarizability as the
//! fault-free run (the integration tests pin this to 1e-8, and it holds to
//! the last bit).
//!
//! Checkpoints are committed only after every collective of the covered
//! iteration has completed on all ranks (a crashed rank kills the
//! iteration's collectives first, so no torn state is ever captured), kept
//! in memory across restarts, and mirrored to disk in the `QPCK` format
//! when a checkpoint directory is configured. Faults injected through
//! [`FaultPlan`](qp_resil::FaultPlan) fire once per process, so the
//! restarted attempt sails past the crash site — exactly like a respawned
//! MPI job on fresh hardware.

use crate::dfpt::DfptOptions;
use crate::parallel::{assign_batches, DirWork, ParallelConfig, ParallelDirectionResult};
use crate::scf::{scf_resumable, ScfOptions, ScfResult, ScfState};
use crate::system::System;
use crate::{CoreError, Result};
use parking_lot::Mutex;
use qp_machine::machine::MachineModel;
use qp_mpi::{run_spmd_with, CommError, FaultHook, SpmdOptions};
use qp_resil::recovery::{RecoveryPolicy, RecoveryStats, Supervisor};
use qp_resil::{DfptCheckpoint, ResilError, ScfCheckpoint};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the resilience layer around a driver.
#[derive(Clone, Default)]
pub struct ResilienceConfig {
    /// Where `QPCK` checkpoints are mirrored (`None` = in-memory only; a
    /// restarted *process* then cannot resume, but in-run recovery works).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every this many iterations (0 disables checkpointing).
    pub checkpoint_interval: usize,
    /// Restart budget for the supervised region.
    pub max_restarts: usize,
    /// Resume from an existing on-disk checkpoint before the first attempt.
    pub restart: bool,
    /// Fault hook installed into the SPMD runtime (usually a
    /// [`qp_resil::FaultPlan`] parsed from `QP_FAULT`).
    pub fault: Option<Arc<dyn FaultHook>>,
    /// Failure-detection deadline override for collectives and `recv`.
    pub comm_timeout: Option<Duration>,
    /// Machine whose simulated clock is charged for checkpoint writes and
    /// restarts.
    pub machine: Option<MachineModel>,
}

impl ResilienceConfig {
    /// A sensible supervised default: checkpoint every `interval`
    /// iterations, allow 3 restarts.
    pub fn with_interval(interval: usize) -> Self {
        ResilienceConfig {
            checkpoint_interval: interval,
            max_restarts: 3,
            ..ResilienceConfig::default()
        }
    }
}

impl std::fmt::Debug for ResilienceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilienceConfig")
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("max_restarts", &self.max_restarts)
            .field("restart", &self.restart)
            .field("fault", &self.fault.as_ref().map(|_| "FaultHook"))
            .field("comm_timeout", &self.comm_timeout)
            .field("machine", &self.machine.map(|m| m.name))
            .finish()
    }
}

/// A resilient direction run: the physics result plus the recovery story.
#[derive(Debug)]
pub struct ResilientDirectionResult {
    /// The converged direction (identical to a fault-free run's).
    pub direction: ParallelDirectionResult,
    /// Restarts, checkpoints, modeled overhead, event log.
    pub stats: RecoveryStats,
}

fn ck_err(e: ResilError) -> CoreError {
    CoreError::Checkpoint(e.to_string())
}

/// Run one DFPT direction under supervision: checkpoint every
/// `rcfg.checkpoint_interval` iterations, and on a rank failure or
/// communication timeout restart the SPMD region from the last committed
/// checkpoint, up to `rcfg.max_restarts` times.
pub fn parallel_dfpt_direction_resilient(
    system: &System,
    ground: &ScfResult,
    dir: usize,
    opts: &DfptOptions,
    cfg: &ParallelConfig,
    rcfg: &ResilienceConfig,
) -> Result<ResilientDirectionResult> {
    let assignment = assign_batches(system, cfg);
    let work = DirWork::new(system, ground, dir, opts, cfg);
    let interval = rcfg.checkpoint_interval;

    let ck_path = rcfg
        .checkpoint_dir
        .as_ref()
        .map(|d| d.join(format!("dfpt_dir{dir}.qpck")));
    let initial = match (&ck_path, rcfg.restart) {
        (Some(p), true) if p.exists() => Some(DfptCheckpoint::load(p).map_err(ck_err)?),
        _ => None,
    };
    // The last *committed* checkpoint: written by rank 0 only after every
    // collective of the covered iteration completed on all ranks, read by
    // every rank at the top of each attempt.
    let store: Mutex<Option<DfptCheckpoint>> = Mutex::new(initial);
    // Checkpoint sizes written during the current attempt, drained into the
    // supervisor between attempts (the SPMD closure cannot borrow it).
    let written: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    // First disk-write error, if any (surfaced after the region exits).
    let io_error: Mutex<Option<ResilError>> = Mutex::new(None);

    let mut spmd_opts = SpmdOptions::default();
    spmd_opts.fault.clone_from(&rcfg.fault);
    if let Some(t) = rcfg.comm_timeout {
        spmd_opts = spmd_opts.with_timeout(t);
    }

    let mut supervisor = Supervisor::new(RecoveryPolicy {
        max_restarts: rcfg.max_restarts,
        ranks: cfg.n_ranks,
        machine: rcfg.machine,
    });

    let run = supervisor.run(|sup, _attempt| {
        let out = run_spmd_with(cfg.n_ranks, cfg.ranks_per_node, spmd_opts.clone(), |comm| {
            let rank = comm.rank();
            let my_batches = DirWork::my_batches(&assignment, rank);
            let my_points: usize = my_batches.iter().map(|&b| system.batches[b].len()).sum();

            let (mut state, start_iter) = match &*store.lock() {
                Some(ck) => (
                    work.state_from(
                        ck.c1.clone(),
                        ck.p1.clone(),
                        ck.diis_in.clone(),
                        ck.diis_res.clone(),
                    ),
                    ck.iteration,
                ),
                None => (work.initial_state(), 0),
            };
            let mut iterations = start_iter;
            let mut converged = false;

            for iter in (start_iter + 1)..=opts.max_iter {
                // The injection point: a planned crash or stall at
                // iteration `iter` fires here, before the iteration's
                // collectives.
                comm.fault_point("dfpt.iter", iter as u64)?;
                iterations = iter;
                let residual = work.iteration(comm, &my_batches, iter, &mut state)?;
                if residual < opts.tol {
                    converged = true;
                    break;
                }
                if rank == 0 && interval > 0 && iter % interval == 0 {
                    let (diis_in, diis_res) = state.mixer.history();
                    let ck = DfptCheckpoint {
                        dir,
                        iteration: iter,
                        c1: state.c1.clone(),
                        p1: state.p1.clone(),
                        residual,
                        diis_in: diis_in.to_vec(),
                        diis_res: diis_res.to_vec(),
                    };
                    written.lock().push(ck.to_bytes().len());
                    if let Some(p) = &ck_path {
                        if let Err(e) = ck.save(p) {
                            *io_error.lock() = Some(e);
                            return Err(CommError::Mismatch("checkpoint write failed"));
                        }
                    }
                    *store.lock() = Some(ck);
                }
            }

            let traffic = if rank == 0 {
                comm.traffic().snapshot()
            } else {
                Vec::new()
            };
            Ok((converged, iterations, state.p1.clone(), traffic, my_points))
        });
        for bytes in written.lock().drain(..) {
            sup.note_checkpoint(bytes);
        }
        out
    });

    if let Some(e) = io_error.into_inner() {
        return Err(ck_err(e));
    }
    let outputs = run.map_err(crate::parallel::comm_failure)?;

    let (converged, iterations, p1, traffic, _) = outputs[0].clone();
    if !converged {
        return Err(CoreError::NoConvergence {
            what: "parallel DFPT self-consistency",
            iterations,
            residual: f64::NAN,
        });
    }
    let points_per_rank = outputs.iter().map(|o| o.4).collect();
    Ok(ResilientDirectionResult {
        direction: ParallelDirectionResult {
            p1,
            iterations,
            traffic,
            points_per_rank,
        },
        stats: supervisor.into_stats(),
    })
}

/// Ground-state SCF with periodic `QPCK` checkpoints (and `--restart`
/// resume). The SCF runs in one process, so supervision here is about
/// *surviving process death*: every `checkpoint_interval` iterations the
/// loop-carried state goes to `<dir>/scf.qpck`, and a rerun with
/// `rcfg.restart` picks up from it, replaying to an identical ground state.
pub fn scf_checkpointed(
    system: &System,
    opts: &ScfOptions,
    rcfg: &ResilienceConfig,
) -> Result<(ScfResult, RecoveryStats)> {
    let ck_path = rcfg.checkpoint_dir.as_ref().map(|d| d.join("scf.qpck"));
    let resume = match (&ck_path, rcfg.restart) {
        (Some(p), true) if p.exists() => {
            let ck = ScfCheckpoint::load(p).map_err(ck_err)?;
            Some(ScfState {
                start_iter: ck.iteration,
                energy: ck.energy,
                p_mat: ck.p_mat,
                diis_in: ck.diis_in,
                diis_res: ck.diis_res,
            })
        }
        _ => None,
    };

    let interval = rcfg.checkpoint_interval;
    let mut written: Vec<usize> = Vec::new();
    let mut io_error: Option<ResilError> = None;
    let result = scf_resumable(system, opts, resume, &mut |st| {
        if interval == 0 || st.start_iter % interval != 0 || io_error.is_some() {
            return;
        }
        let ck = ScfCheckpoint {
            iteration: st.start_iter,
            energy: st.energy,
            p_mat: st.p_mat.clone(),
            diis_in: st.diis_in.clone(),
            diis_res: st.diis_res.clone(),
        };
        written.push(ck.to_bytes().len());
        if let Some(p) = &ck_path {
            if let Err(e) = ck.save(p) {
                io_error = Some(e);
            }
        }
    })?;
    if let Some(e) = io_error {
        return Err(ck_err(e));
    }

    let mut supervisor = Supervisor::new(RecoveryPolicy {
        max_restarts: 0,
        ranks: 1,
        machine: rcfg.machine,
    });
    for bytes in written {
        supervisor.note_checkpoint(bytes);
    }
    Ok((result, supervisor.into_stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::scf;
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn tiny_system() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 24;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 120, 2)
    }

    #[test]
    fn scf_checkpoint_resume_is_bit_exact() {
        let sys = tiny_system();
        let opts = ScfOptions::default();
        let reference = scf(&sys, &opts).unwrap();

        let dir = std::env::temp_dir().join("qp_resil_scf_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let rcfg = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 3,
            ..ResilienceConfig::default()
        };
        let (first, stats) = scf_checkpointed(&sys, &opts, &rcfg).unwrap();
        assert_eq!(first.energy.to_bits(), reference.energy.to_bits());
        assert!(stats.checkpoints_written > 0);

        // "Process death": rerun from the on-disk checkpoint. The resumed
        // run replays the tail of the cycle and lands on the identical
        // ground state.
        let restart = ResilienceConfig {
            restart: true,
            ..rcfg
        };
        let (second, _) = scf_checkpointed(&sys, &opts, &restart).unwrap();
        assert_eq!(second.energy.to_bits(), reference.energy.to_bits());
        assert_eq!(second.iterations, reference.iterations);
        assert!(
            second
                .density_matrix
                .max_abs_diff(&reference.density_matrix)
                == 0.0
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
