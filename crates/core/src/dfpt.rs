//! The DFPT self-consistency cycle (Fig. 1 of the paper) and the
//! polarizability (Eq. 13).
//!
//! Per field direction `J`:
//!
//! * **DM**    — response density matrix `P¹ = Σ_i f_i (C¹C + CC¹)` (Eq. 7)
//! * **Sumup** — response density `n¹(r) = Σ P¹_μν χ_μ χ_ν` (Eq. 8)
//! * **Rho**   — response electrostatic potential `v¹_es,tot` via the
//!   multipole Poisson solver (Eq. 9)
//! * **H**     — response Hamiltonian
//!   `H¹_μν = ⟨χ_μ| v¹_es,tot + f_xc n¹ − r_J |χ_ν⟩` (Eqs. 10–12)
//! * Sternheimer update: first-order perturbation of the occupied orbitals,
//!   `C¹_i = Σ_a C_a H¹(MO)_ai / (ε_i − ε_a)`, mixed until `‖ΔP¹‖ < tol`.
//!
//! The perturbation convention follows Eq. 11 (`ĥ¹ = … − r_J`), so the
//! polarizability is `α_IJ = ∫ r_I n¹_J = Tr[P¹_J D_I] > 0` for physical
//! systems.

use crate::mixing::{DfptMixer, MixState};
use crate::operators;
use crate::scf::ScfResult;
use crate::system::System;
use crate::{CoreError, Result};
use qp_chem::multipole::{solve_poisson, MultipoleMoments};
use qp_chem::xc;
use qp_linalg::DMatrix;

/// The symmetric Sternheimer weight matrix in the MO basis:
///
/// `W_pq = (f_p − f_q)/(ε_p − ε_q) · H¹(MO)_pq`, zero on the diagonal and
/// on pairs with `f_p = f_q` (they do not respond). `W` is symmetric: the
/// prefactor is even under `p ↔ q` and `H¹(MO)` is symmetric for a
/// symmetric `H¹`. Built in O(n²).
pub fn sternheimer_weights(eigenvalues: &[f64], occupations: &[f64], h1_mo: &DMatrix) -> DMatrix {
    let nb = eigenvalues.len();
    let mut w = DMatrix::zeros(nb, nb);
    for p in 0..nb {
        for q in (p + 1)..nb {
            let df = occupations[p] - occupations[q];
            if df.abs() < 1e-12 {
                continue;
            }
            let wpq = df / (eigenvalues[p] - eigenvalues[q]) * h1_mo[(p, q)];
            w[(p, q)] = wpq;
            w[(q, p)] = wpq;
        }
    }
    w
}

/// First-order response density matrix from the Sternheimer/CPKS pair
/// formula with (possibly fractional) occupations:
///
/// `P¹ = Σ_{p<q} (f_p − f_q)/(ε_p − ε_q) · H¹(MO)_pq · (C_p C_qᵀ + C_q C_pᵀ)`
///
/// At integer occupations this reduces exactly to Eq. 7 with
/// `C¹_i = Σ_a C_a H¹_ai/(ε_i − ε_a)`; with Fermi–Dirac occupations it is
/// the finite-temperature generalization (pairs with `f_p = f_q` do not
/// respond). Since `f` is monotone in `ε`, `f_p ≠ f_q` implies
/// `ε_p ≠ ε_q`, and near-degenerate pairs approach the bounded limit
/// `df/dε`.
///
/// Evaluated in factored GEMM form: with the symmetric weight matrix `W`
/// of [`sternheimer_weights`], the pair sum is algebraically
/// `P¹ = C·W·Cᵀ` — two Level-3 products (O(n³)) instead of the O(n⁴)
/// scalar pair-loop retained in [`sternheimer_response_pairwise`] as the
/// test oracle.
pub fn sternheimer_response(
    c: &DMatrix,
    eigenvalues: &[f64],
    occupations: &[f64],
    h1_mo: &DMatrix,
) -> DMatrix {
    let w = sternheimer_weights(eigenvalues, occupations, h1_mo);
    let cw = c.par_matmul(&w).expect("conforming dims");
    cw.par_matmul(&c.transpose()).expect("conforming dims")
}

/// Occupation classes for screening: `(a, b)` where `[0, a)` is the
/// longest prefix of `occupations` with spread `< 1e-12` (the fully /
/// equally occupied manifold `O*`) and `[b, nb)` the analogous suffix
/// (`V*`), clamped so the two never overlap.  Every pair inside one class
/// has `|f_p − f_q| < 1e-12`, exactly the pairs [`sternheimer_weights`]
/// skips — so `W` is *exactly* `0.0` on the `O*×O*` and `V*×V*` blocks,
/// and `h1_mo` is never read there.  Computed by tracking min/max, no
/// monotonicity assumed.
fn occupation_classes(occupations: &[f64]) -> (usize, usize) {
    let nb = occupations.len();
    if nb == 0 {
        return (0, 0);
    }
    const TOL: f64 = 1e-12;
    let (mut lo, mut hi) = (occupations[0], occupations[0]);
    let mut a = 1;
    for (i, &f) in occupations.iter().enumerate().skip(1) {
        lo = lo.min(f);
        hi = hi.max(f);
        if hi - lo < TOL {
            a = i + 1;
        } else {
            break;
        }
    }
    let (mut lo, mut hi) = (occupations[nb - 1], occupations[nb - 1]);
    let mut b = nb - 1;
    for i in (0..nb - 1).rev() {
        lo = lo.min(occupations[i]);
        hi = hi.max(occupations[i]);
        if hi - lo < TOL {
            b = i;
        } else {
            break;
        }
    }
    (a, b.max(a))
}

/// Screened MO transform of the response Hamiltonian: `Cᵀ·H¹·C` with the
/// `O*×O*` and `V*×V*` diagonal blocks skipped (left exactly `0.0`).
/// [`sternheimer_weights`] checks `|f_p − f_q| < 1e-12` *before* reading
/// `h1_mo[(p, q)]`, so the skipped blocks are never consumed; every
/// computed entry is bit-identical to the dense transform (row/column
/// restriction of a GEMM never changes an element's own k-chain).
pub fn h1_mo_screened(c_t: &DMatrix, h1: &DMatrix, c: &DMatrix, occupations: &[f64]) -> DMatrix {
    let x = c_t.par_matmul(h1).expect("conforming dims");
    let nb = c.rows();
    let (a, b) = occupation_classes(occupations);
    let mut out = DMatrix::zeros(nb, nb);
    // Per column class, the row range that survives: occupied columns
    // pair only with rows outside O*, virtual columns with rows before V*.
    for (c0, c1, r0, r1) in [(0, a, a, nb), (a, b, 0, nb), (b, nb, 0, b)] {
        if c0 >= c1 || r0 >= r1 {
            continue;
        }
        let (nr, nc) = (r1 - r0, c1 - c0);
        let xs = x.as_slice();
        let cs = c.as_slice();
        // A' = X rows r0..r1 (contiguous in row-major storage).
        let ap = &xs[r0 * nb..r1 * nb];
        // B' = C columns c0..c1, packed (exact copies).
        let mut bp = vec![0.0; nb * nc];
        for r in 0..nb {
            bp[r * nc..(r + 1) * nc].copy_from_slice(&cs[r * nb + c0..r * nb + c1]);
        }
        let mut tmp = vec![0.0; nr * nc];
        qp_linalg::gemm::gemm(nr, nc, nb, ap, &bp, &mut tmp, true);
        let os = out.as_mut_slice();
        for r in 0..nr {
            os[(r0 + r) * nb + c0..(r0 + r) * nb + c1].copy_from_slice(&tmp[r * nc..(r + 1) * nc]);
        }
    }
    out
}

/// Screened evaluation of the `C·W` half of `P¹ = C·W·Cᵀ`: per column
/// class of `W`, only the k-range that can hold nonzero weights is
/// contracted (`O*` columns couple only to `k ≥ a`, `V*` columns only to
/// `k < b`).  The skipped `k` terms are *exactly* `0.0` in `W`, and the
/// restricted GEMM calls are issued one per [`qp_linalg::gemm::K_GROUP`]-
/// aligned segment, reproducing the dense k-accumulation grouping — so
/// the result is bit-identical to `c.par_matmul(&w)` at any size.
fn cw_restricted(c: &DMatrix, w: &DMatrix, a: usize, b: usize) -> DMatrix {
    const KG: usize = qp_linalg::gemm::K_GROUP;
    let nb = c.rows();
    let mut out = DMatrix::zeros(nb, nb);
    for (c0, c1, k0, k1) in [(0, a, a, nb), (a, b, 0, nb), (b, nb, 0, b)] {
        if c0 >= c1 {
            continue;
        }
        let nc = c1 - c0;
        let mut tmp = vec![0.0; nb * nc];
        let (cs, ws) = (c.as_slice(), w.as_slice());
        let mut k = k0;
        while k < k1 {
            // One call per K_GROUP-aligned segment intersected with
            // [k0, k1): the dense path zeroes a fresh accumulator tile per
            // segment, so this is the only regrouping that preserves bits.
            let seg_end = ((k / KG + 1) * KG).min(k1);
            let kk = seg_end - k;
            let mut ap = vec![0.0; nb * kk];
            for r in 0..nb {
                ap[r * kk..(r + 1) * kk].copy_from_slice(&cs[r * nb + k..r * nb + seg_end]);
            }
            let mut bp = vec![0.0; kk * nc];
            for r in 0..kk {
                bp[r * nc..(r + 1) * nc].copy_from_slice(&ws[(k + r) * nb + c0..(k + r) * nb + c1]);
            }
            qp_linalg::gemm::gemm(nb, nc, kk, &ap, &bp, &mut tmp, true);
            k = seg_end;
        }
        let os = out.as_mut_slice();
        for r in 0..nb {
            os[r * nb + c0..r * nb + c1].copy_from_slice(&tmp[r * nc..(r + 1) * nc]);
        }
    }
    out
}

/// Screened [`sternheimer_response`]: identical bits, fewer flops.  The
/// occupied and virtual manifolds do not couple to themselves, so the
/// `C·W` contraction restricts each column class to its coupling k-range
/// (following the sparse-response formulation of arXiv:2009.03551); the
/// closing `·Cᵀ` product is dense and unchanged.
pub fn sternheimer_response_screened(
    c: &DMatrix,
    eigenvalues: &[f64],
    occupations: &[f64],
    h1_mo: &DMatrix,
) -> DMatrix {
    let w = sternheimer_weights(eigenvalues, occupations, h1_mo);
    let (a, b) = occupation_classes(occupations);
    let cw = cw_restricted(c, &w, a, b);
    cw.par_matmul(&c.transpose()).expect("conforming dims")
}

/// The original O(n⁴) scalar pair-loop evaluation of the same formula —
/// kept as the oracle for the GEMM-form [`sternheimer_response`] (property
/// tests pin the two against each other, including degenerate spectra).
pub fn sternheimer_response_pairwise(
    c: &DMatrix,
    eigenvalues: &[f64],
    occupations: &[f64],
    h1_mo: &DMatrix,
) -> DMatrix {
    let nb = c.rows();
    let mut p1 = DMatrix::zeros(nb, nb);
    for p in 0..nb {
        for q in (p + 1)..nb {
            let df = occupations[p] - occupations[q];
            if df.abs() < 1e-12 {
                continue;
            }
            let w = df / (eigenvalues[p] - eigenvalues[q]) * h1_mo[(p, q)];
            if w == 0.0 {
                continue;
            }
            for mu in 0..nb {
                let cp = c[(mu, p)];
                let cq = c[(mu, q)];
                for nu in 0..nb {
                    p1[(mu, nu)] += w * (cp * c[(nu, q)] + cq * c[(nu, p)]);
                }
            }
        }
    }
    p1
}

/// DFPT options.
#[derive(Debug, Clone, Copy)]
pub struct DfptOptions {
    /// Maximum DFPT self-consistency iterations per direction.
    pub max_iter: usize,
    /// Convergence threshold on `‖ΔP¹‖` (max abs).
    pub tol: f64,
    /// Mixing factor (linear factor, or DIIS damping + linear fallback).
    pub mixing: f64,
    /// Self-consistency accelerator: plain linear mixing or Pulay/DIIS
    /// extrapolation (the default, matching the SCF loop).
    pub mixer: DfptMixer,
}

impl Default for DfptOptions {
    fn default() -> Self {
        DfptOptions {
            max_iter: 60,
            tol: 1e-7,
            mixing: 0.6,
            mixer: DfptMixer::Pulay { depth: 6 },
        }
    }
}

/// Converged response for all three field directions.
#[derive(Debug, Clone)]
pub struct DfptResult {
    /// Polarizability tensor `α_IJ` (Eq. 13), Bohr³.
    pub polarizability: DMatrix,
    /// Response density matrices `P¹` per direction.
    pub response_density_matrices: Vec<DMatrix>,
    /// DFPT iterations used per direction.
    pub iterations: [usize; 3],
}

/// One direction's self-consistent response.
pub struct DirectionResponse {
    /// Converged response density matrix.
    pub p1: DMatrix,
    /// Response density at grid points.
    pub n1: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

/// The loop-carried state of one serial DFPT direction between iterations:
/// everything needed to resume the Sternheimer self-consistency at
/// `iteration + 1` and replay the remaining iterations **bit-exactly**
/// (the mixer is deterministic in its inputs, so a resumed cycle walks the
/// identical floating-point sequence). Snapshotted by the serving layer
/// (`qp-serve`) into `QPCK` job checkpoints at preemption boundaries.
#[derive(Debug, Clone)]
pub struct DfptDirState {
    /// Completed DFPT iterations.
    pub iteration: usize,
    /// Mixed response density matrix entering iteration `iteration + 1`.
    pub p1: DMatrix,
    /// `‖ΔP¹‖` at `iteration` (diagnostic only).
    pub residual: f64,
    /// Pulay/DIIS mixer input history (empty under linear mixing).
    pub diis_in: Vec<DMatrix>,
    /// Pulay/DIIS mixer residual history (same length as `diis_in`).
    pub diis_res: Vec<DMatrix>,
}

/// Outcome of a preemptible DFPT direction run.
pub enum DirOutcome {
    /// The cycle converged; the physics result.
    Converged(DirectionResponse),
    /// The `on_iter` callback requested preemption; resume later by
    /// passing this state back to [`dfpt_direction_preemptible`].
    Preempted(DfptDirState),
}

/// Build `P¹` from ground-state and response coefficients (Eq. 7, f = 2):
/// the **DM** phase.
pub fn response_density_matrix(c: &DMatrix, c1: &DMatrix, n_occ: usize) -> DMatrix {
    let nb = c.rows();
    // P¹ = 2 (M + Mᵀ) with M = C¹_occ · C_occᵀ — one Level-3 product on the
    // blocked parallel GEMM instead of the former per-orbital triple loop.
    let c1_occ = DMatrix::from_fn(nb, n_occ, |mu, i| c1[(mu, i)]);
    let c_occ_t = DMatrix::from_fn(n_occ, nb, |i, nu| c[(nu, i)]);
    let m = c1_occ.par_matmul(&c_occ_t).expect("conforming dims");
    DMatrix::from_fn(nb, nb, |mu, nu| 2.0 * (m[(mu, nu)] + m[(nu, mu)]))
}

/// Linear-scaling [`response_density_matrix`] on the screened pair support
/// (Shang et al., arXiv:2009.03551): `M = C¹_occ · C_occᵀ` visits only the
/// surviving atom-pair blocks, and within each block only the
/// `K_GROUP`-aligned occupied-index segments where both coefficient
/// factors have support. For localized `C`/`C¹` (each occupied column
/// confined to an atom neighbourhood) the cost is
/// `O(surviving (pair, segment) blocks)` — linear in system size — instead
/// of the dense `O(n_basis² · n_occ)`.
///
/// Bit-identity: the segment truncation skips only exact-`±0.0`
/// contributions, and every surviving segment reproduces the dense GEMM's
/// own `K_GROUP` accumulation grouping, so on-support entries match
/// [`response_density_matrix`] bit for bit at any thread count;
/// off-support entries (dropped by the masked product) come back as exact
/// `+0.0`.
pub fn response_density_matrix_screened(
    plan: &crate::screening::ScreenPlan,
    c: &DMatrix,
    c1: &DMatrix,
    n_occ: usize,
    parallel: bool,
) -> DMatrix {
    let nb = c.rows();
    let mut m = plan.empty_blocks();
    let c1_occ = DMatrix::from_fn(nb, n_occ, |mu, i| c1[(mu, i)]);
    let c_occ = DMatrix::from_fn(nb, n_occ, |nu, i| c[(nu, i)]);
    m.rank_k_update_ab_screened(&c1_occ, &c_occ, parallel)
        .expect("partition matches coefficients");
    let md = m.to_dense();
    DMatrix::from_fn(nb, nb, |mu, nu| 2.0 * (md[(mu, nu)] + md[(nu, mu)]))
}

/// Direction-independent data the three field directions share: the
/// dipole matrices, the xc kernel on the grid, and the transposed ground
/// orbitals. [`dfpt`] builds this once; [`dfpt_direction`] builds it
/// per-call for standalone use.
pub struct DfptShared {
    /// Dipole matrices `D_x, D_y, D_z`.
    pub dips: Vec<DMatrix>,
    /// `f_xc(n0)` at every grid point (Eq. 12).
    pub fxc: Vec<f64>,
    /// `Cᵀ` (for the MO transform of `H¹`).
    pub c_t: DMatrix,
}

impl DfptShared {
    /// Precompute the shared data from the converged ground state.
    pub fn new(system: &System, ground: &ScfResult) -> Self {
        DfptShared {
            dips: (0..3)
                .map(|d| operators::dipole_matrix(system, d))
                .collect(),
            fxc: {
                let mut fxc = vec![0.0; ground.density.len()];
                qp_par::fill_slice_hinted(&mut fxc, 60, |i| xc::f_xc(ground.density[i].max(0.0)));
                fxc
            },
            c_t: ground.orbitals.transpose(),
        }
    }
}

/// Run the DFPT cycle for one Cartesian direction `dir`.
pub fn dfpt_direction(
    system: &System,
    ground: &ScfResult,
    dir: usize,
    opts: &DfptOptions,
) -> Result<DirectionResponse> {
    let shared = DfptShared::new(system, ground);
    dfpt_direction_with(system, ground, &shared, dir, opts)
}

/// [`dfpt_direction`] against precomputed [`DfptShared`] data.
pub fn dfpt_direction_with(
    system: &System,
    ground: &ScfResult,
    shared: &DfptShared,
    dir: usize,
    opts: &DfptOptions,
) -> Result<DirectionResponse> {
    match dfpt_direction_preemptible(system, ground, shared, dir, opts, None, &mut |_| true)? {
        DirOutcome::Converged(resp) => Ok(resp),
        DirOutcome::Preempted(_) => unreachable!("callback never preempts"),
    }
}

/// [`dfpt_direction_with`] with checkpoint/preemption hooks — the
/// resumable-run entry point the serving layer drives.
///
/// `resume` seeds the cycle from a previously captured [`DfptDirState`];
/// `on_iter` observes the loop-carried state after every non-converged
/// iteration and returns `false` to preempt the run at that boundary. A
/// preempted-then-resumed cycle replays the identical floating-point
/// sequence as an uninterrupted one, so the converged `P¹` (and every
/// polarizability element contracted from it) matches to the bit.
pub fn dfpt_direction_preemptible(
    system: &System,
    ground: &ScfResult,
    shared: &DfptShared,
    dir: usize,
    opts: &DfptOptions,
    resume: Option<DfptDirState>,
    on_iter: &mut dyn FnMut(&DfptDirState) -> bool,
) -> Result<DirOutcome> {
    let nb = system.n_basis();
    let dip = &shared.dips[dir];
    let c = &ground.orbitals;
    let eps = &ground.eigenvalues;

    let mut dir_span = qp_trace::SpanGuard::begin(
        qp_trace::thread_rank(),
        qp_trace::Phase::Dfpt,
        "dfpt.direction",
    );
    if dir_span.is_recording() {
        dir_span.arg("dir", dir).arg("basis", nb);
    }
    // Work not covered by a finer phase_span (mixing, residual norms)
    // lands in the "dfpt" bucket rather than "other".
    let _label = qp_par::LabelGuard::set("dfpt");
    let dir_label = ["x", "y", "z"][dir.min(2)];
    let residual_gauge = qp_trace::global_metrics().gauge("dfpt.residual", &[("dir", dir_label)]);

    let (start_iter, mut p1, mut mixer) = match resume {
        Some(st) => (
            st.iteration,
            st.p1,
            MixState::with_history(opts.mixer, opts.mixing, st.diis_in, st.diis_res),
        ),
        None => (
            0,
            DMatrix::zeros(nb, nb),
            MixState::new(opts.mixer, opts.mixing),
        ),
    };
    let mut residual = f64::INFINITY;

    for iter in (start_iter + 1)..=opts.max_iter {
        let mut iter_span =
            qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Dfpt, "dfpt.iter");
        if iter_span.is_recording() {
            iter_span.arg("iter", iter);
        }
        // Sumup: response density on the grid (Eq. 8).
        let n1 = {
            let _s = crate::phase_span(qp_trace::Phase::Sumup, "sumup.n1");
            system.density_on_grid(&p1)
        };

        // Rho: response electrostatic potential (Eq. 9) + xc kernel (Eq. 12).
        let v1: Vec<f64> = {
            let _s = crate::phase_span(qp_trace::Phase::Rho, "rho.v1");
            // The Hartree geometry plan caches the per-(point, atom)
            // distances, harmonics and spline brackets across all DFPT
            // iterations; planned and direct branches are bit-identical
            // and the choice depends only on system size.
            let plan = system.hartree_plan();
            let moments = match plan.as_deref() {
                Some(pl) => {
                    MultipoleMoments::compute_planned(&system.structure, &system.grid, &n1, pl)
                }
                None => {
                    MultipoleMoments::compute(&system.structure, &system.grid, &n1, system.lmax)
                }
            };
            let hartree = solve_poisson(&system.structure, &system.grid, &moments);
            let natoms = system.structure.len();
            // Per-point potentials land in their own slots; the
            // index-ordered parallel fill keeps the result bit-identical
            // at any thread count.
            let mut v1 = vec![0.0; system.grid.len()];
            let est = (natoms * hartree.n_lm * 8).max(1) as u64;
            // Tree mode serves the far field from aggregated cluster
            // moments (QP_FARFIELD_TOL budget) instead of the O(natoms)
            // per-point sum.
            match system.farfield_tree() {
                Some(tree) => {
                    let far = qp_grid::FarField::aggregate(tree, &hartree, qp_grid::farfield_tol());
                    qp_par::fill_slice_hinted(&mut v1, est, |gi| {
                        far.eval(tree, &hartree, system.grid.points[gi].position)
                            + shared.fxc[gi] * n1[gi]
                    });
                }
                None => match plan.as_deref() {
                    Some(pl) => qp_par::fill_slice_hinted(&mut v1, est, |gi| {
                        hartree.eval_planned(pl, gi) + shared.fxc[gi] * n1[gi]
                    }),
                    None => qp_par::fill_slice_hinted(&mut v1, est, |gi| {
                        let p = &system.grid.points[gi];
                        hartree.eval_atoms(p.position, 0..natoms) + shared.fxc[gi] * n1[gi]
                    }),
                },
            }
            v1
        };

        // H: response Hamiltonian (Eqs. 10-11): induced part − r_J.
        let mut h1 = {
            let _s = crate::phase_span(qp_trace::Phase::H, "h1.integrate");
            operators::potential_matrix(system, &v1)
        };
        h1.axpy(-1.0, dip)?;

        // Sternheimer update in the MO basis (occupation-aware GEMM form —
        // handles both integer and Fermi-Dirac ground states).  With a
        // screening plan active, the MO transform skips the non-coupling
        // O*×O*/V*×V* blocks and C·W restricts each column class to its
        // coupling k-range — bit-identical to the dense contraction.
        let p1_target = {
            let _s = crate::phase_span(qp_trace::Phase::Sternheimer, "sternheimer");
            if system.screen().is_some() {
                let h1_mo = h1_mo_screened(&shared.c_t, &h1, c, &ground.occupations);
                sternheimer_response_screened(c, eps, &ground.occupations, &h1_mo)
            } else {
                let h1_mo = shared.c_t.par_matmul(&h1)?.par_matmul(c)?;
                sternheimer_response(c, eps, &ground.occupations, &h1_mo)
            }
        };

        // Mix P¹ (DM phase): linear or Pulay/DIIS per `opts.mixer`.
        let p1_new = mixer.step(&p1, &p1_target);
        residual = p1_new.max_abs_diff(&p1);
        residual_gauge.set(residual);
        if iter_span.is_recording() {
            iter_span.arg("residual", residual);
        }
        p1 = p1_new;

        if residual < opts.tol {
            let n1 = system.density_on_grid(&p1);
            return Ok(DirOutcome::Converged(DirectionResponse {
                p1,
                n1,
                iterations: iter,
            }));
        }

        let (diis_in, diis_res) = mixer.history();
        let state = DfptDirState {
            iteration: iter,
            p1: p1.clone(),
            residual,
            diis_in: diis_in.to_vec(),
            diis_res: diis_res.to_vec(),
        };
        if !on_iter(&state) {
            return Ok(DirOutcome::Preempted(state));
        }
    }
    Err(CoreError::NoConvergence {
        what: "DFPT self-consistency",
        iterations: opts.max_iter,
        residual,
    })
}

/// Run the full DFPT calculation: all three directions + polarizability.
pub fn dfpt(system: &System, ground: &ScfResult, opts: &DfptOptions) -> Result<DfptResult> {
    let mut alpha = DMatrix::zeros(3, 3);
    let mut p1s = Vec::with_capacity(3);
    let mut iterations = [0usize; 3];

    // Dipoles, f_xc and Cᵀ are direction-independent: build them once and
    // share across the three directions (and the α contraction below).
    let shared = DfptShared::new(system, ground);

    for j in 0..3 {
        let resp = dfpt_direction_with(system, ground, &shared, j, opts)?;
        // α_IJ = ∫ r_I n¹_J = Tr[P¹_J D_I] (Eq. 13) — the three row
        // contractions are independent; merge in index order.
        let col: Vec<f64> = qp_par::map_vec((0..3).collect::<Vec<usize>>(), |i| {
            resp.p1
                .trace_product(&shared.dips[i])
                .expect("conforming dims")
        });
        for (i, &a_ij) in col.iter().enumerate() {
            alpha[(i, j)] = a_ij;
        }
        iterations[j] = resp.iterations;
        p1s.push(resp.p1);
    }
    Ok(DfptResult {
        polarizability: alpha,
        response_density_matrices: p1s,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{electronic_dipole, scf, ScfOptions};
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn water_system() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn response_density_matrix_is_symmetric() {
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let resp = dfpt_direction(&sys, &ground, 2, &DfptOptions::default()).unwrap();
        assert!(
            resp.p1.max_abs_diff(&resp.p1.transpose()) < 1e-10,
            "P1 must be symmetric by construction"
        );
    }

    #[test]
    fn response_density_integrates_to_zero() {
        // Charge conservation: ∫ n1 = 0 (the perturbation moves charge, it
        // does not create it). Exactly: Tr[P1 S] = 0.
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let resp = dfpt_direction(&sys, &ground, 0, &DfptOptions::default()).unwrap();
        let tr = resp.p1.trace_product(&ground.overlap).unwrap();
        assert!(tr.abs() < 1e-8, "Tr[P1 S] = {tr}");
        let q1 = sys.grid.integrate_values(&resp.n1);
        assert!(q1.abs() < 1e-3, "∫n1 = {q1}");
    }

    #[test]
    fn water_polarizability_physical() {
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let res = dfpt(&sys, &ground, &DfptOptions::default()).unwrap();
        let a = &res.polarizability;
        // Positive diagonal, symmetric tensor.
        for d in 0..3 {
            assert!(a[(d, d)] > 0.0, "α[{d}{d}] = {}", a[(d, d)]);
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (a[(i, j)] - a[(j, i)]).abs() < 0.05 * a[(0, 0)].abs().max(1e-3),
                    "α asymmetric at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    a[(j, i)]
                );
            }
        }
        // Water's C2v symmetry: off-diagonals vanish in our frame (x ⊥
        // molecular plane contains x axis... the molecule lies in the x-y
        // plane, so α_xz = α_yz = 0 by symmetry).
        assert!(a[(0, 2)].abs() < 1e-3 * a[(0, 0)].abs().max(1.0));
    }

    #[test]
    fn dfpt_matches_finite_difference_scf() {
        // The decisive end-to-end correctness test: the self-consistent DFPT
        // response must equal the numerical derivative of a finite-field
        // SCF, because both run through identical grids, Poisson solver and
        // xc code paths.
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let res = dfpt(&sys, &ground, &DfptOptions::default()).unwrap();

        // α_iz via central difference of the electronic dipole under a
        // z field: one ± pair of SCF solves covers all three components.
        let xi = 2e-3;
        let tight = ScfOptions {
            tol: 1e-10,
            ..ScfOptions::default()
        };
        let plus = scf(
            &sys,
            &ScfOptions {
                field: Some([0.0, 0.0, xi]),
                ..tight
            },
        )
        .unwrap();
        let minus = scf(
            &sys,
            &ScfOptions {
                field: Some([0.0, 0.0, -xi]),
                ..tight
            },
        )
        .unwrap();
        let mu_p = electronic_dipole(&sys, &plus.density);
        let mu_m = electronic_dipole(&sys, &minus.density);
        let mut fd = [0.0f64; 3];
        for (i, fd_i) in fd.iter_mut().enumerate() {
            *fd_i = (mu_p[i] - mu_m[i]) / (2.0 * xi);
        }
        for i in 0..3 {
            let dfpt_val = res.polarizability[(i, 2)];
            assert!(
                (dfpt_val - fd[i]).abs() < 0.02 * fd[2].abs().max(0.5),
                "α[{i},z]: DFPT {dfpt_val} vs finite-difference {}",
                fd[i]
            );
        }
    }

    #[test]
    fn zero_response_matrix_from_zero_c1() {
        let nb = 6;
        let c = DMatrix::identity(nb);
        let c1 = DMatrix::zeros(nb, 3);
        let p1 = response_density_matrix(&c, &c1, 3);
        assert_eq!(p1.frobenius_norm(), 0.0);
    }
}

#[cfg(test)]
mod screened_dm_proptests {
    use super::*;
    use crate::screening::ScreenPlan;
    use proptest::prelude::*;
    use qp_chem::basis::{BasisSet, BasisSettings};
    use qp_chem::structures::polyethylene;
    use qp_linalg::DMatrix;

    // Random geometries (jittered polyethylene chains → random screened
    // pair supports) with random coefficients: the screened response-DM
    // must reproduce `response_density_matrix` bit for bit on the pair
    // support — at 1, 2 and 8 pool threads — and emit exact +0.0 off it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn screened_response_dm_bit_identical_across_thread_counts(
            monomers in 3usize..6,
            jitter in prop::collection::vec(-0.25f64..0.25, 3 * 40),
            vals in prop::collection::vec(-1.0f64..1.0, 512),
        ) {
            let mut structure = polyethylene(monomers);
            for (i, atom) in structure.atoms.iter_mut().enumerate() {
                for d in 0..3 {
                    atom.position[d] += jitter[(3 * i + d) % jitter.len()];
                }
            }
            let basis = BasisSet::build(&structure, BasisSettings::Light);
            let plan = ScreenPlan::build(&structure, &basis);
            let nb = basis.len();
            let v = |r: usize, c: usize| vals[(r * 131 + c * 17) % vals.len()];
            let c_mat = DMatrix::from_fn(nb, nb, v);
            let n_occ = (nb / 3).max(1);
            let c1 = DMatrix::from_fn(nb, n_occ, |r, c| v(r + 7, c + 3));

            let dense = response_density_matrix(&c_mat, &c1, n_occ);
            let screened: Vec<DMatrix> = [1usize, 2, 8]
                .iter()
                .map(|&t| {
                    let _lease = qp_par::ThreadLease::exactly(t);
                    response_density_matrix_screened(&plan, &c_mat, &c1, n_occ, true)
                })
                .collect();
            for s in &screened[1..] {
                for (a, b) in screened[0].as_slice().iter().zip(s.as_slice()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            for i in 0..nb {
                for j in 0..nb {
                    let on = plan
                        .neighbours
                        .contains(plan.fn_atom[i] as usize, plan.fn_atom[j] as usize);
                    if on {
                        prop_assert_eq!(
                            screened[0][(i, j)].to_bits(),
                            dense[(i, j)].to_bits()
                        );
                    } else {
                        prop_assert_eq!(screened[0][(i, j)].to_bits(), 0.0f64.to_bits());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod sternheimer_tests {
    use super::*;

    /// Integer occupations: the pair formula must equal the classic
    /// occupied-virtual C¹ construction.
    #[test]
    fn pair_formula_matches_integer_cpks() {
        let nb = 7;
        let n_occ = 3;
        // Orthonormal-ish C and a symmetric perturbation.
        let mut seed = 5u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let c = DMatrix::from_fn(nb, nb, |_, _| rnd());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64 - 2.5).collect();
        let mut h1 = DMatrix::from_fn(nb, nb, |_, _| rnd());
        h1.symmetrize();
        let h1_mo = c.transpose().matmul(&h1).unwrap().matmul(&c).unwrap();
        // h1_mo isn't symmetric for non-orthogonal C; symmetrize to match
        // the physical case (C^T H C with H symmetric IS symmetric... up to
        // the random C being full rank, it is). Use it directly.
        let occ: Vec<f64> = (0..nb).map(|i| if i < n_occ { 2.0 } else { 0.0 }).collect();
        let pair = sternheimer_response_pairwise(&c, &eps, &occ, &h1_mo);

        // Classic: C1_i = sum_a C_a H_ai/(eps_i - eps_a); P1 via Eq. 7.
        let mut c1 = DMatrix::zeros(nb, n_occ);
        for i in 0..n_occ {
            for a in n_occ..nb {
                let u = h1_mo[(a, i)] / (eps[i] - eps[a]);
                for mu in 0..nb {
                    c1[(mu, i)] += c[(mu, a)] * u;
                }
            }
        }
        let classic = response_density_matrix(&c, &c1, n_occ);
        assert!(
            pair.max_abs_diff(&classic) < 1e-10,
            "deviation {}",
            pair.max_abs_diff(&classic)
        );
        // And the factored GEMM form agrees with both.
        let gemm = sternheimer_response(&c, &eps, &occ, &h1_mo);
        assert!(
            gemm.max_abs_diff(&pair) < 1e-12,
            "GEMM vs pairwise deviation {}",
            gemm.max_abs_diff(&pair)
        );
    }

    #[test]
    fn equal_occupations_do_not_respond() {
        let nb = 4;
        let c = DMatrix::identity(nb);
        let eps = vec![0.0, 1.0, 2.0, 3.0];
        let occ = vec![1.5; nb]; // uniform fractional occupation
        let h1 = DMatrix::from_fn(nb, nb, |i, j| (i + j) as f64);
        let p1 = sternheimer_response(&c, &eps, &occ, &h1);
        assert_eq!(p1.frobenius_norm(), 0.0);
        let pair = sternheimer_response_pairwise(&c, &eps, &occ, &h1);
        assert_eq!(pair.frobenius_norm(), 0.0);
    }

    #[test]
    fn gemm_form_matches_pairwise_on_degenerate_spectrum() {
        // Degenerate levels with equal occupations must be skipped by both
        // paths; partially-occupied near-degenerate pairs go through the
        // bounded (f_p − f_q)/(ε_p − ε_q) ratio.
        let nb = 8;
        let c = DMatrix::from_fn(nb, nb, |i, j| ((i * 5 + j * 3) as f64 * 0.41).sin());
        let eps = vec![-2.0, -2.0, -1.0, -1.0 + 1e-9, 0.0, 0.5, 0.5, 3.0];
        let occ = vec![2.0, 2.0, 1.7, 1.3, 0.6, 0.2, 0.2, 0.0];
        let mut h1 = DMatrix::from_fn(nb, nb, |i, j| ((i as f64 - j as f64) * 0.9).cos());
        h1.symmetrize();
        let gemm = sternheimer_response(&c, &eps, &occ, &h1);
        let pair = sternheimer_response_pairwise(&c, &eps, &occ, &h1);
        // Near-degenerate weights blow the absolute scale up to ~1/gap, so
        // compare relative to the result's own magnitude.
        let scale = pair.frobenius_norm().max(1.0);
        assert!(
            gemm.max_abs_diff(&pair) < 1e-12 * scale,
            "deviation {} at scale {scale}",
            gemm.max_abs_diff(&pair)
        );
    }

    /// The full screened Sternheimer pipeline (restricted MO transform +
    /// class-restricted C·W) must reproduce the dense pipeline bit for
    /// bit, including past the K_GROUP = 256 accumulation boundary.
    #[test]
    fn screened_pipeline_bit_identical_past_k_group() {
        let nb = 300; // > K_GROUP, exercises the segment-aligned calls
        let mut seed = 17u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let c = DMatrix::from_fn(nb, nb, |_, _| rnd());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64 * 0.03 - 4.0).collect();
        // Occupied manifold, smeared frontier, virtual manifold.
        let occ: Vec<f64> = (0..nb)
            .map(|i| {
                if i < 120 {
                    2.0
                } else if i < 130 {
                    2.0 / (1.0 + (i as f64 - 125.0).exp())
                } else {
                    0.0
                }
            })
            .collect();
        let mut h1 = DMatrix::from_fn(nb, nb, |_, _| rnd());
        h1.symmetrize();
        let c_t = c.transpose();

        let h1_mo_dense = c_t.par_matmul(&h1).unwrap().par_matmul(&c).unwrap();
        let dense = sternheimer_response(&c, &eps, &occ, &h1_mo_dense);

        let h1_mo_scr = h1_mo_screened(&c_t, &h1, &c, &occ);
        let screened = sternheimer_response_screened(&c, &eps, &occ, &h1_mo_scr);

        for (i, (d, s)) in dense.as_slice().iter().zip(screened.as_slice()).enumerate() {
            assert_eq!(d.to_bits(), s.to_bits(), "entry {i}: {d} vs {s}");
        }
        // The screened MO transform really skipped work: the O*×O* block
        // is exactly zero while the dense one is not.
        let (a, _) = (120usize, 130usize);
        assert_eq!(h1_mo_scr[(0, a - 1)], 0.0);
        assert!(h1_mo_dense[(0, a - 1)] != 0.0);
    }

    /// Degenerate / uniform occupations: everything is one class, W = 0,
    /// and both paths return exact zeros.
    #[test]
    fn screened_pipeline_uniform_occupations_all_zero() {
        let nb = 12;
        let c = DMatrix::from_fn(nb, nb, |i, j| ((i * 7 + j) as f64 * 0.3).sin());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64).collect();
        let occ = vec![1.25; nb];
        let mut h1 = DMatrix::from_fn(nb, nb, |i, j| ((i + 2 * j) as f64 * 0.7).cos());
        h1.symmetrize();
        let c_t = c.transpose();
        let h1_mo = h1_mo_screened(&c_t, &h1, &c, &occ);
        let screened = sternheimer_response_screened(&c, &eps, &occ, &h1_mo);
        let dense = sternheimer_response(
            &c,
            &eps,
            &occ,
            &c_t.par_matmul(&h1).unwrap().par_matmul(&c).unwrap(),
        );
        for (d, s) in dense.as_slice().iter().zip(screened.as_slice()) {
            assert_eq!(d.to_bits(), s.to_bits());
        }
        assert_eq!(screened.frobenius_norm(), 0.0);
    }

    #[test]
    fn occupation_classes_cover_edge_cases() {
        assert_eq!(occupation_classes(&[]), (0, 0));
        assert_eq!(occupation_classes(&[2.0]), (1, 1));
        assert_eq!(occupation_classes(&[2.0, 2.0, 0.0, 0.0]), (2, 2));
        assert_eq!(occupation_classes(&[2.0, 2.0, 1.3, 0.0]), (2, 3));
        // Uniform: one class; clamp keeps b >= a.
        assert_eq!(occupation_classes(&[1.0, 1.0, 1.0]), (3, 3));
        // Strictly varying: trivial one-element classes at both ends.
        assert_eq!(occupation_classes(&[2.0, 1.5, 1.0, 0.5]), (1, 3));
    }

    #[test]
    fn response_is_symmetric() {
        let nb = 6;
        let c = DMatrix::from_fn(nb, nb, |i, j| ((i * 3 + j) as f64 * 0.7).cos());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64 * 0.5).collect();
        let occ = vec![2.0, 2.0, 1.3, 0.7, 0.0, 0.0];
        let mut h1 = DMatrix::from_fn(nb, nb, |i, j| (i as f64 - j as f64).sin());
        h1.symmetrize();
        let p1 = sternheimer_response(&c, &eps, &occ, &h1);
        assert!(p1.max_abs_diff(&p1.transpose()) < 1e-12);
    }
}
