//! The DFPT self-consistency cycle (Fig. 1 of the paper) and the
//! polarizability (Eq. 13).
//!
//! Per field direction `J`:
//!
//! * **DM**    — response density matrix `P¹ = Σ_i f_i (C¹C + CC¹)` (Eq. 7)
//! * **Sumup** — response density `n¹(r) = Σ P¹_μν χ_μ χ_ν` (Eq. 8)
//! * **Rho**   — response electrostatic potential `v¹_es,tot` via the
//!   multipole Poisson solver (Eq. 9)
//! * **H**     — response Hamiltonian
//!   `H¹_μν = ⟨χ_μ| v¹_es,tot + f_xc n¹ − r_J |χ_ν⟩` (Eqs. 10–12)
//! * Sternheimer update: first-order perturbation of the occupied orbitals,
//!   `C¹_i = Σ_a C_a H¹(MO)_ai / (ε_i − ε_a)`, mixed until `‖ΔP¹‖ < tol`.
//!
//! The perturbation convention follows Eq. 11 (`ĥ¹ = … − r_J`), so the
//! polarizability is `α_IJ = ∫ r_I n¹_J = Tr[P¹_J D_I] > 0` for physical
//! systems.

use crate::operators;
use crate::scf::ScfResult;
use crate::system::System;
use crate::{CoreError, Result};
use qp_chem::multipole::{solve_poisson, MultipoleMoments};
use qp_chem::xc;
use qp_linalg::DMatrix;

/// First-order response density matrix from the Sternheimer/CPKS pair
/// formula with (possibly fractional) occupations:
///
/// `P¹ = Σ_{p<q} (f_p − f_q)/(ε_p − ε_q) · H¹(MO)_pq · (C_p C_qᵀ + C_q C_pᵀ)`
///
/// At integer occupations this reduces exactly to Eq. 7 with
/// `C¹_i = Σ_a C_a H¹_ai/(ε_i − ε_a)`; with Fermi–Dirac occupations it is
/// the finite-temperature generalization (pairs with `f_p = f_q` do not
/// respond). Since `f` is monotone in `ε`, `f_p ≠ f_q` implies
/// `ε_p ≠ ε_q`, and near-degenerate pairs approach the bounded limit
/// `df/dε`.
pub fn sternheimer_response(
    c: &DMatrix,
    eigenvalues: &[f64],
    occupations: &[f64],
    h1_mo: &DMatrix,
) -> DMatrix {
    let nb = c.rows();
    let mut p1 = DMatrix::zeros(nb, nb);
    for p in 0..nb {
        for q in (p + 1)..nb {
            let df = occupations[p] - occupations[q];
            if df.abs() < 1e-12 {
                continue;
            }
            let w = df / (eigenvalues[p] - eigenvalues[q]) * h1_mo[(p, q)];
            if w == 0.0 {
                continue;
            }
            for mu in 0..nb {
                let cp = c[(mu, p)];
                let cq = c[(mu, q)];
                for nu in 0..nb {
                    p1[(mu, nu)] += w * (cp * c[(nu, q)] + cq * c[(nu, p)]);
                }
            }
        }
    }
    p1
}

/// DFPT options.
#[derive(Debug, Clone, Copy)]
pub struct DfptOptions {
    /// Maximum DFPT self-consistency iterations per direction.
    pub max_iter: usize,
    /// Convergence threshold on `‖ΔP¹‖` (max abs).
    pub tol: f64,
    /// Linear mixing for `C¹`.
    pub mixing: f64,
}

impl Default for DfptOptions {
    fn default() -> Self {
        DfptOptions {
            max_iter: 60,
            tol: 1e-7,
            mixing: 0.6,
        }
    }
}

/// Converged response for all three field directions.
#[derive(Debug, Clone)]
pub struct DfptResult {
    /// Polarizability tensor `α_IJ` (Eq. 13), Bohr³.
    pub polarizability: DMatrix,
    /// Response density matrices `P¹` per direction.
    pub response_density_matrices: Vec<DMatrix>,
    /// DFPT iterations used per direction.
    pub iterations: [usize; 3],
}

/// One direction's self-consistent response.
pub struct DirectionResponse {
    /// Converged response density matrix.
    pub p1: DMatrix,
    /// Response density at grid points.
    pub n1: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

/// Build `P¹` from ground-state and response coefficients (Eq. 7, f = 2):
/// the **DM** phase.
pub fn response_density_matrix(c: &DMatrix, c1: &DMatrix, n_occ: usize) -> DMatrix {
    let nb = c.rows();
    // P¹ = 2 (M + Mᵀ) with M = C¹_occ · C_occᵀ — one Level-3 product on the
    // blocked parallel GEMM instead of the former per-orbital triple loop.
    let c1_occ = DMatrix::from_fn(nb, n_occ, |mu, i| c1[(mu, i)]);
    let c_occ_t = DMatrix::from_fn(n_occ, nb, |i, nu| c[(nu, i)]);
    let m = c1_occ.par_matmul(&c_occ_t).expect("conforming dims");
    DMatrix::from_fn(nb, nb, |mu, nu| 2.0 * (m[(mu, nu)] + m[(nu, mu)]))
}

/// Run the DFPT cycle for one Cartesian direction `dir`.
pub fn dfpt_direction(
    system: &System,
    ground: &ScfResult,
    dir: usize,
    opts: &DfptOptions,
) -> Result<DirectionResponse> {
    let nb = system.n_basis();
    let n_occ = system.n_occupied();
    let dip = operators::dipole_matrix(system, dir);
    // f_xc(n0) at every grid point (Eq. 12).
    let fxc: Vec<f64> = ground
        .density
        .iter()
        .map(|&n| xc::f_xc(n.max(0.0)))
        .collect();

    let c = &ground.orbitals;
    let eps = &ground.eigenvalues;
    let _ = n_occ;

    let mut dir_span = qp_trace::SpanGuard::begin(
        qp_trace::thread_rank(),
        qp_trace::Phase::Dfpt,
        "dfpt.direction",
    );
    if dir_span.is_recording() {
        dir_span.arg("dir", dir).arg("basis", nb);
    }
    let dir_label = ["x", "y", "z"][dir.min(2)];
    let residual_gauge = qp_trace::global_metrics().gauge("dfpt.residual", &[("dir", dir_label)]);

    let mut p1 = DMatrix::zeros(nb, nb);
    let mut residual = f64::INFINITY;

    for iter in 1..=opts.max_iter {
        let mut iter_span =
            qp_trace::SpanGuard::begin(qp_trace::thread_rank(), qp_trace::Phase::Dfpt, "dfpt.iter");
        if iter_span.is_recording() {
            iter_span.arg("iter", iter);
        }
        // Sumup: response density on the grid (Eq. 8).
        let n1 = {
            let _s = crate::phase_span(qp_trace::Phase::Sumup, "sumup.n1");
            system.density_on_grid(&p1)
        };

        // Rho: response electrostatic potential (Eq. 9) + xc kernel (Eq. 12).
        let v1: Vec<f64> = {
            let _s = crate::phase_span(qp_trace::Phase::Rho, "rho.v1");
            let moments =
                MultipoleMoments::compute(&system.structure, &system.grid, &n1, system.lmax);
            let hartree = solve_poisson(&system.structure, &system.grid, &moments);
            let natoms = system.structure.len();
            system
                .grid
                .points
                .iter()
                .zip(n1.iter().zip(fxc.iter()))
                .map(|(p, (&dn, &fx))| hartree.eval_atoms(p.position, 0..natoms) + fx * dn)
                .collect()
        };

        // H: response Hamiltonian (Eqs. 10-11): induced part − r_J.
        let mut h1 = {
            let _s = crate::phase_span(qp_trace::Phase::H, "h1.integrate");
            operators::potential_matrix(system, &v1)
        };
        h1.axpy(-1.0, &dip)?;

        // Sternheimer update in the MO basis (occupation-aware pair form —
        // handles both integer and Fermi-Dirac ground states).
        let p1_target = {
            let _s = crate::phase_span(qp_trace::Phase::Sternheimer, "sternheimer");
            let h1_mo = c.transpose().matmul(&h1)?.matmul(c)?;
            sternheimer_response(c, eps, &ground.occupations, &h1_mo)
        };

        // Mix P¹ (DM phase).
        let mut p1_new = p1.clone();
        p1_new.scale(1.0 - opts.mixing);
        p1_new.axpy(opts.mixing, &p1_target)?;
        residual = p1_new.max_abs_diff(&p1);
        residual_gauge.set(residual);
        if iter_span.is_recording() {
            iter_span.arg("residual", residual);
        }
        p1 = p1_new;

        if residual < opts.tol {
            let n1 = system.density_on_grid(&p1);
            return Ok(DirectionResponse {
                p1,
                n1,
                iterations: iter,
            });
        }
    }
    Err(CoreError::NoConvergence {
        what: "DFPT self-consistency",
        iterations: opts.max_iter,
        residual,
    })
}

/// Run the full DFPT calculation: all three directions + polarizability.
pub fn dfpt(system: &System, ground: &ScfResult, opts: &DfptOptions) -> Result<DfptResult> {
    let mut alpha = DMatrix::zeros(3, 3);
    let mut p1s = Vec::with_capacity(3);
    let mut iterations = [0usize; 3];

    // Pre-build the three dipole matrices for the α contraction.
    let dips: Vec<DMatrix> = (0..3)
        .map(|d| operators::dipole_matrix(system, d))
        .collect();

    for j in 0..3 {
        let resp = dfpt_direction(system, ground, j, opts)?;
        for (i, dip_i) in dips.iter().enumerate() {
            // α_IJ = ∫ r_I n¹_J = Tr[P¹_J D_I] (Eq. 13).
            alpha[(i, j)] = resp.p1.trace_product(dip_i)?;
        }
        iterations[j] = resp.iterations;
        p1s.push(resp.p1);
    }
    Ok(DfptResult {
        polarizability: alpha,
        response_density_matrices: p1s,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{electronic_dipole, scf, ScfOptions};
    use qp_chem::basis::BasisSettings;
    use qp_chem::grids::GridSettings;
    use qp_chem::structures::water;

    fn water_system() -> System {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 26;
        System::build(water(), BasisSettings::Light, &gs, 150, 2)
    }

    #[test]
    fn response_density_matrix_is_symmetric() {
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let resp = dfpt_direction(&sys, &ground, 2, &DfptOptions::default()).unwrap();
        assert!(
            resp.p1.max_abs_diff(&resp.p1.transpose()) < 1e-10,
            "P1 must be symmetric by construction"
        );
    }

    #[test]
    fn response_density_integrates_to_zero() {
        // Charge conservation: ∫ n1 = 0 (the perturbation moves charge, it
        // does not create it). Exactly: Tr[P1 S] = 0.
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let resp = dfpt_direction(&sys, &ground, 0, &DfptOptions::default()).unwrap();
        let tr = resp.p1.trace_product(&ground.overlap).unwrap();
        assert!(tr.abs() < 1e-8, "Tr[P1 S] = {tr}");
        let q1 = sys.grid.integrate_values(&resp.n1);
        assert!(q1.abs() < 1e-3, "∫n1 = {q1}");
    }

    #[test]
    fn water_polarizability_physical() {
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let res = dfpt(&sys, &ground, &DfptOptions::default()).unwrap();
        let a = &res.polarizability;
        // Positive diagonal, symmetric tensor.
        for d in 0..3 {
            assert!(a[(d, d)] > 0.0, "α[{d}{d}] = {}", a[(d, d)]);
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (a[(i, j)] - a[(j, i)]).abs() < 0.05 * a[(0, 0)].abs().max(1e-3),
                    "α asymmetric at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    a[(j, i)]
                );
            }
        }
        // Water's C2v symmetry: off-diagonals vanish in our frame (x ⊥
        // molecular plane contains x axis... the molecule lies in the x-y
        // plane, so α_xz = α_yz = 0 by symmetry).
        assert!(a[(0, 2)].abs() < 1e-3 * a[(0, 0)].abs().max(1.0));
    }

    #[test]
    fn dfpt_matches_finite_difference_scf() {
        // The decisive end-to-end correctness test: the self-consistent DFPT
        // response must equal the numerical derivative of a finite-field
        // SCF, because both run through identical grids, Poisson solver and
        // xc code paths.
        let sys = water_system();
        let ground = scf(&sys, &ScfOptions::default()).unwrap();
        let res = dfpt(&sys, &ground, &DfptOptions::default()).unwrap();

        let xi = 2e-3;
        let tight = ScfOptions {
            tol: 1e-10,
            ..ScfOptions::default()
        };
        let mut fd = [0.0f64; 3];
        for (i, fd_i) in fd.iter_mut().enumerate() {
            // α_iz via central difference of the electronic dipole under a
            // z field.
            let plus = scf(
                &sys,
                &ScfOptions {
                    field: Some([0.0, 0.0, xi]),
                    ..tight
                },
            )
            .unwrap();
            let minus = scf(
                &sys,
                &ScfOptions {
                    field: Some([0.0, 0.0, -xi]),
                    ..tight
                },
            )
            .unwrap();
            let mu_p = electronic_dipole(&sys, &plus.density);
            let mu_m = electronic_dipole(&sys, &minus.density);
            *fd_i = (mu_p[i] - mu_m[i]) / (2.0 * xi);
        }
        for i in 0..3 {
            let dfpt_val = res.polarizability[(i, 2)];
            assert!(
                (dfpt_val - fd[i]).abs() < 0.02 * fd[2].abs().max(0.5),
                "α[{i},z]: DFPT {dfpt_val} vs finite-difference {}",
                fd[i]
            );
        }
    }

    #[test]
    fn zero_response_matrix_from_zero_c1() {
        let nb = 6;
        let c = DMatrix::identity(nb);
        let c1 = DMatrix::zeros(nb, 3);
        let p1 = response_density_matrix(&c, &c1, 3);
        assert_eq!(p1.frobenius_norm(), 0.0);
    }
}

#[cfg(test)]
mod sternheimer_tests {
    use super::*;

    /// Integer occupations: the pair formula must equal the classic
    /// occupied-virtual C¹ construction.
    #[test]
    fn pair_formula_matches_integer_cpks() {
        let nb = 7;
        let n_occ = 3;
        // Orthonormal-ish C and a symmetric perturbation.
        let mut seed = 5u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let c = DMatrix::from_fn(nb, nb, |_, _| rnd());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64 - 2.5).collect();
        let mut h1 = DMatrix::from_fn(nb, nb, |_, _| rnd());
        h1.symmetrize();
        let h1_mo = c.transpose().matmul(&h1).unwrap().matmul(&c).unwrap();
        // h1_mo isn't symmetric for non-orthogonal C; symmetrize to match
        // the physical case (C^T H C with H symmetric IS symmetric... up to
        // the random C being full rank, it is). Use it directly.
        let occ: Vec<f64> = (0..nb).map(|i| if i < n_occ { 2.0 } else { 0.0 }).collect();
        let pair = sternheimer_response(&c, &eps, &occ, &h1_mo);

        // Classic: C1_i = sum_a C_a H_ai/(eps_i - eps_a); P1 via Eq. 7.
        let mut c1 = DMatrix::zeros(nb, n_occ);
        for i in 0..n_occ {
            for a in n_occ..nb {
                let u = h1_mo[(a, i)] / (eps[i] - eps[a]);
                for mu in 0..nb {
                    c1[(mu, i)] += c[(mu, a)] * u;
                }
            }
        }
        let classic = response_density_matrix(&c, &c1, n_occ);
        assert!(
            pair.max_abs_diff(&classic) < 1e-10,
            "deviation {}",
            pair.max_abs_diff(&classic)
        );
    }

    #[test]
    fn equal_occupations_do_not_respond() {
        let nb = 4;
        let c = DMatrix::identity(nb);
        let eps = vec![0.0, 1.0, 2.0, 3.0];
        let occ = vec![1.5; nb]; // uniform fractional occupation
        let h1 = DMatrix::from_fn(nb, nb, |i, j| (i + j) as f64);
        let p1 = sternheimer_response(&c, &eps, &occ, &h1);
        assert_eq!(p1.frobenius_norm(), 0.0);
    }

    #[test]
    fn response_is_symmetric() {
        let nb = 6;
        let c = DMatrix::from_fn(nb, nb, |i, j| ((i * 3 + j) as f64 * 0.7).cos());
        let eps: Vec<f64> = (0..nb).map(|i| i as f64 * 0.5).collect();
        let occ = vec![2.0, 2.0, 1.3, 0.7, 0.0, 0.0];
        let mut h1 = DMatrix::from_fn(nb, nb, |i, j| (i as f64 - j as f64).sin());
        h1.symmetrize();
        let p1 = sternheimer_response(&c, &eps, &occ, &h1);
        assert!(p1.max_abs_diff(&p1.transpose()) < 1e-12);
    }
}
