//! The recovery supervisor: retry a failed SPMD region from its last
//! checkpoint, bounded by a restart budget, with the modeled cost of every
//! checkpoint write and recovery charged to the `qp-machine` simulated
//! clock.
//!
//! The in-process runtime makes failure cheap (threads, not nodes), so the
//! *time* cost of resilience — what the checkpoint-interval ablation
//! measures — is modeled, not measured: [`Supervisor::note_checkpoint`]
//! charges [`checkpoint_write_time`] and each restart charges
//! [`restart_time`], both emitted as spans on the machine's simulated
//! timeline (`Phase::Resil`).
//!
//! [`checkpoint_write_time`]: qp_machine::cost::checkpoint_write_time
//! [`restart_time`]: qp_machine::cost::restart_time

use qp_machine::machine::MachineModel;
use qp_mpi::CommError;

/// What the supervisor is allowed to do and on which modeled machine.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Restart budget: attempts beyond `max_restarts + 1` surface the error.
    pub max_restarts: usize,
    /// Ranks of the supervised world (enters the modeled recovery cost).
    pub ranks: usize,
    /// Machine whose simulated clock is charged (`None` = no cost model).
    pub machine: Option<MachineModel>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_restarts: 3,
            ranks: 1,
            machine: None,
        }
    }
}

/// What happened during a supervised run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Attempts performed (1 = fault-free).
    pub attempts: usize,
    /// Restarts performed (`attempts - 1` on success).
    pub restarts: usize,
    /// Checkpoints written.
    pub checkpoints_written: usize,
    /// Size of the most recent checkpoint (bytes).
    pub checkpoint_bytes: usize,
    /// Modeled seconds spent writing checkpoints.
    pub sim_checkpoint_s: f64,
    /// Modeled seconds spent recovering (respawn + restore).
    pub sim_recovery_s: f64,
    /// Human-readable log of failures and restarts, in order.
    pub events: Vec<String>,
}

impl RecoveryStats {
    /// Total modeled resilience overhead (checkpointing + recovery).
    pub fn sim_overhead_s(&self) -> f64 {
        self.sim_checkpoint_s + self.sim_recovery_s
    }
}

/// Supervises one SPMD region: runs it, and on a *failure-class* error
/// ([`CommError::RankFailed`] / [`CommError::Timeout`]) retries up to the
/// policy's restart budget. The retried closure re-enters from the last
/// checkpoint (that part is the caller's contract — the closure reads the
/// shared checkpoint store on each attempt).
pub struct Supervisor {
    policy: RecoveryPolicy,
    stats: RecoveryStats,
    /// Cursor on the simulated timeline for emitted resil spans.
    sim_clock_s: f64,
}

impl Supervisor {
    /// A supervisor with the given policy and empty stats.
    pub fn new(policy: RecoveryPolicy) -> Self {
        Supervisor {
            policy,
            stats: RecoveryStats::default(),
            sim_clock_s: 0.0,
        }
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Consume the supervisor, yielding its stats.
    pub fn into_stats(self) -> RecoveryStats {
        self.stats
    }

    /// Record a checkpoint of `bytes` written by the supervised region and
    /// charge its modeled write time.
    pub fn note_checkpoint(&mut self, bytes: usize) {
        self.stats.checkpoints_written += 1;
        self.stats.checkpoint_bytes = bytes;
        if let Some(m) = &self.policy.machine {
            let dur = qp_machine::cost::checkpoint_write_time(m, self.policy.ranks, bytes);
            self.stats.sim_checkpoint_s += dur;
            m.sim_span(
                0,
                qp_trace::Phase::Resil,
                "resil.checkpoint",
                self.sim_clock_s,
                dur,
            );
            self.sim_clock_s += dur;
        }
    }

    /// Is `err` a failure the supervisor recovers from (as opposed to a
    /// programming error it must surface)?
    pub fn recoverable(err: &CommError) -> bool {
        matches!(err, CommError::RankFailed | CommError::Timeout)
    }

    /// Run `attempt` (called with the 0-based attempt number) until it
    /// succeeds, fails unrecoverably, or exhausts the restart budget.
    pub fn run<T>(
        &mut self,
        mut attempt: impl FnMut(&mut Supervisor, usize) -> Result<T, CommError>,
    ) -> Result<T, CommError> {
        loop {
            let n = self.stats.attempts;
            self.stats.attempts += 1;
            let mut span = qp_trace::SpanGuard::begin(0, qp_trace::Phase::Resil, "resil.attempt");
            if span.is_recording() {
                span.arg("attempt", n as u64);
            }
            match attempt(self, n) {
                Ok(out) => return Ok(out),
                Err(e)
                    if Self::recoverable(&e) && self.stats.restarts < self.policy.max_restarts =>
                {
                    self.stats.restarts += 1;
                    self.stats
                        .events
                        .push(format!("restart {} after {e}", self.stats.restarts));
                    if let Some(m) = &self.policy.machine {
                        let dur = qp_machine::cost::restart_time(
                            m,
                            self.policy.ranks,
                            self.stats.checkpoint_bytes,
                        );
                        self.stats.sim_recovery_s += dur;
                        m.sim_span(
                            0,
                            qp_trace::Phase::Resil,
                            "resil.restart",
                            self.sim_clock_s,
                            dur,
                        );
                        self.sim_clock_s += dur;
                    }
                }
                Err(e) => {
                    self.stats.events.push(format!("gave up: {e}"));
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max: usize) -> RecoveryPolicy {
        RecoveryPolicy {
            max_restarts: max,
            ranks: 4,
            machine: None,
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut sup = Supervisor::new(policy(3));
        let out = sup.run(|_, n| {
            if n < 2 {
                Err(CommError::RankFailed)
            } else {
                Ok(n)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(sup.stats().attempts, 3);
        assert_eq!(sup.stats().restarts, 2);
        assert_eq!(sup.stats().events.len(), 2);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let mut sup = Supervisor::new(policy(2));
        let out: Result<(), _> = sup.run(|_, _| Err(CommError::Timeout));
        assert_eq!(out, Err(CommError::Timeout));
        assert_eq!(sup.stats().attempts, 3, "1 try + 2 restarts");
    }

    #[test]
    fn programming_errors_are_not_retried() {
        let mut sup = Supervisor::new(policy(5));
        let out: Result<(), _> = sup.run(|_, _| Err(CommError::Mismatch("bad lengths")));
        assert!(matches!(out, Err(CommError::Mismatch(_))));
        assert_eq!(sup.stats().attempts, 1);
        assert_eq!(sup.stats().restarts, 0);
    }

    #[test]
    fn modeled_costs_accumulate() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_restarts: 1,
            ranks: 256,
            machine: Some(qp_machine::machine::hpc2()),
        });
        let out = sup.run(|sup, n| {
            sup.note_checkpoint(8 << 20);
            if n == 0 {
                Err(CommError::RankFailed)
            } else {
                Ok(())
            }
        });
        assert_eq!(out, Ok(()));
        let st = sup.stats();
        assert_eq!(st.checkpoints_written, 2);
        assert!(st.sim_checkpoint_s > 0.0);
        assert!(
            st.sim_recovery_s >= qp_machine::calib::RESPAWN_OVERHEAD,
            "restart pays at least the respawn overhead"
        );
        assert!(st.sim_overhead_s() > st.sim_recovery_s);
    }
}
