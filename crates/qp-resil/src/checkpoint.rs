//! The `QPCK` checkpoint format: versioned, checksummed, hand-rolled binary.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QPCK"
//! 4       4     format version (u32, currently 2)
//! 8       1     kind (1 = SCF, 2 = DFPT)
//! 9       8     payload length (u64)
//! 17      8     FNV-1a 64 checksum of the payload
//! 25      —     payload
//! ```
//!
//! Version history: v1 carried `(dir, iteration, c1, p1, residual)` for
//! DFPT; v2 appends the Pulay/DIIS mixer history (`diis_in`, `diis_res`)
//! so a restarted direction replays the DIIS-accelerated sequence
//! bit-exactly. Loads reject other versions (a v1 file cannot seed a v2
//! mixer without silently changing the replayed trajectory).
//!
//! Matrices are encoded as `rows:u64, cols:u64, data:f64×(rows·cols)` with
//! `f64::to_le_bytes`, so a save→load round trip is **bit-exact** — the
//! restored run replays the identical floating-point sequence, which is what
//! lets a recovered DFPT direction land on the fault-free answer to 1e-8
//! and the reproducibility test demand identical traces.
//!
//! Writes are atomic: the bytes go to `<path>.tmp` and are `rename`d into
//! place, so a crash mid-write leaves the previous checkpoint intact.
//! Loads verify magic, version, kind, length, and checksum before decoding;
//! corruption or truncation is a clean [`ResilError`], never a panic.

use crate::{ResilError, Result};
use qp_linalg::DMatrix;
use std::path::Path;

const MAGIC: [u8; 4] = *b"QPCK";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8;

const KIND_SCF: u8 = 1;
const KIND_DFPT: u8 = 2;
const KIND_JOB: u8 = 3;

/// FNV-1a 64-bit checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- encoding

#[derive(Default)]
struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_matrix(&mut self, m: &DMatrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f64(v);
        }
    }

    fn put_matrices(&mut self, ms: &[DMatrix]) {
        self.put_usize(ms.len());
        for m in ms {
            self.put_matrix(m);
        }
    }
}

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ResilError::Format("payload truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ResilError::Format("length overflows usize"))
    }

    fn f64(&mut self) -> Result<f64> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn matrix(&mut self) -> Result<DMatrix> {
        let rows = self.counted(8)?;
        let cols = self.counted(8)?;
        let n = rows
            .checked_mul(cols)
            .ok_or(ResilError::Format("matrix dims overflow"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        DMatrix::from_vec(rows, cols, data).map_err(|_| ResilError::Format("bad matrix dims"))
    }

    fn matrices(&mut self) -> Result<Vec<DMatrix>> {
        let n = self.counted(16)?;
        (0..n).map(|_| self.matrix()).collect()
    }

    /// A count whose items occupy at least `min_item_bytes` each — rejects
    /// absurd counts before any allocation (defense against corrupted
    /// lengths that survived the checksum only in adversarial tests).
    fn counted(&mut self, min_item_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        if n.saturating_mul(min_item_bytes) > self.buf.len() {
            return Err(ResilError::Format("count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ResilError::Format("trailing bytes after payload"))
        }
    }
}

// ------------------------------------------------------------- the framing

fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn unframe(bytes: &[u8], want_kind: u8) -> Result<&[u8]> {
    if bytes.len() < HEADER_LEN {
        return Err(ResilError::Format("shorter than header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(ResilError::Format("bad magic (not a QPCK checkpoint)"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ResilError::Format("unsupported checkpoint version"));
    }
    let kind = bytes[8];
    if kind != want_kind {
        return Err(ResilError::Format("checkpoint kind mismatch"));
    }
    let len = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")) as usize;
    let stored_sum = u64::from_le_bytes(bytes[17..25].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(ResilError::Format("payload length mismatch (truncated?)"));
    }
    let got = fnv1a(payload);
    if got != stored_sum {
        return Err(ResilError::Checksum {
            expected: stored_sum,
            got,
        });
    }
    Ok(payload)
}

fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ----------------------------------------------------------------- payloads

/// Loop-carried SCF state: everything needed to resume the ground-state
/// cycle at `iteration + 1` and replay the remaining iterations exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ScfCheckpoint {
    /// Completed SCF iterations.
    pub iteration: usize,
    /// Kohn–Sham total energy at `iteration` (diagnostic only).
    pub energy: f64,
    /// The mixed density matrix that seeds iteration `iteration + 1`.
    pub p_mat: DMatrix,
    /// Pulay/DIIS input-density history.
    pub diis_in: Vec<DMatrix>,
    /// Pulay/DIIS residual history (same length as `diis_in`).
    pub diis_res: Vec<DMatrix>,
}

impl ScfCheckpoint {
    fn encode_payload(&self, e: &mut Encoder) {
        e.put_usize(self.iteration);
        e.put_f64(self.energy);
        e.put_matrix(&self.p_mat);
        e.put_matrices(&self.diis_in);
        e.put_matrices(&self.diis_res);
    }

    fn decode_payload(d: &mut Decoder) -> Result<Self> {
        Ok(ScfCheckpoint {
            iteration: d.usize()?,
            energy: d.f64()?,
            p_mat: d.matrix()?,
            diis_in: d.matrices()?,
            diis_res: d.matrices()?,
        })
    }

    /// Serialize to the framed `QPCK` byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::default();
        self.encode_payload(&mut e);
        frame(KIND_SCF, &e.buf)
    }

    /// Decode from framed bytes, verifying header and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(unframe(bytes, KIND_SCF)?);
        let out = Self::decode_payload(&mut d)?;
        d.finish()?;
        Ok(out)
    }

    /// Atomically write to `path` (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Load and verify from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Loop-carried DFPT state for one field direction: resume the Sternheimer
/// cycle at `iteration + 1` with the mixed `C¹` and its `P¹`.
#[derive(Debug, Clone, PartialEq)]
pub struct DfptCheckpoint {
    /// Cartesian direction (0 = x, 1 = y, 2 = z).
    pub dir: usize,
    /// Completed DFPT iterations.
    pub iteration: usize,
    /// Mixed response coefficients `C¹` entering the next iteration.
    pub c1: DMatrix,
    /// Response density matrix `P¹` built from `c1`.
    pub p1: DMatrix,
    /// `‖ΔP¹‖` at `iteration` (diagnostic only).
    pub residual: f64,
    /// Pulay/DIIS mixer input history (empty under linear mixing).
    pub diis_in: Vec<DMatrix>,
    /// Pulay/DIIS mixer residual history (same length as `diis_in`).
    pub diis_res: Vec<DMatrix>,
}

impl DfptCheckpoint {
    /// Serialize to the framed `QPCK` byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::default();
        e.put_usize(self.dir);
        e.put_usize(self.iteration);
        e.put_matrix(&self.c1);
        e.put_matrix(&self.p1);
        e.put_f64(self.residual);
        e.put_matrices(&self.diis_in);
        e.put_matrices(&self.diis_res);
        frame(KIND_DFPT, &e.buf)
    }

    /// Decode from framed bytes, verifying header and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(unframe(bytes, KIND_DFPT)?);
        let out = DfptCheckpoint {
            dir: d.usize()?,
            iteration: d.usize()?,
            c1: d.matrix()?,
            p1: d.matrix()?,
            residual: d.f64()?,
            diis_in: d.matrices()?,
            diis_res: d.matrices()?,
        };
        d.finish()?;
        Ok(out)
    }

    /// Atomically write to `path` (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Load and verify from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// A finished DFPT direction inside a [`JobCheckpoint`]: only the numbers
/// that survive into the final answer.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDoneDirection {
    /// DFPT iterations the direction took.
    pub iterations: usize,
    /// The direction's polarizability column `α_{·,J} = Tr[P¹_J D_I]`.
    pub alpha_col: [f64; 3],
}

/// The in-flight DFPT direction of a preempted job: the serial analogue of
/// [`DfptCheckpoint`] (the serial cycle mixes `P¹` directly, so there is no
/// `C¹` to carry).
#[derive(Debug, Clone, PartialEq)]
pub struct JobDirCheckpoint {
    /// Cartesian direction (0 = x, 1 = y, 2 = z).
    pub dir: usize,
    /// Completed DFPT iterations.
    pub iteration: usize,
    /// `‖ΔP¹‖` at `iteration` (diagnostic only).
    pub residual: f64,
    /// Mixed response density matrix entering the next iteration.
    pub p1: DMatrix,
    /// Pulay/DIIS mixer input history (empty under linear mixing).
    pub diis_in: Vec<DMatrix>,
    /// Pulay/DIIS mixer residual history (same length as `diis_in`).
    pub diis_res: Vec<DMatrix>,
}

impl JobDirCheckpoint {
    fn encode_payload(&self, e: &mut Encoder) {
        e.put_usize(self.dir);
        e.put_usize(self.iteration);
        e.put_f64(self.residual);
        e.put_matrix(&self.p1);
        e.put_matrices(&self.diis_in);
        e.put_matrices(&self.diis_res);
    }

    fn decode_payload(d: &mut Decoder) -> Result<Self> {
        Ok(JobDirCheckpoint {
            dir: d.usize()?,
            iteration: d.usize()?,
            residual: d.f64()?,
            p1: d.matrix()?,
            diis_in: d.matrices()?,
            diis_res: d.matrices()?,
        })
    }
}

/// The preempt/resume state of one *served* simulation job: where the
/// request was interrupted, and everything needed to replay the remainder
/// bit-exactly. This is the `QPCK` payload behind `qp-serve`'s
/// checkpointed preemption — a job preempted at an iteration boundary (or
/// killed with the whole server) resumes from this state and lands on the
/// identical SCF energy and polarizability as an uninterrupted run.
///
/// Layout choices mirror the driver: the SCF seed is the *latest
/// non-converged* [`ScfCheckpoint`] (resume replays the short tail of the
/// ground-state cycle — determinism makes the replay exact); finished
/// directions keep only their α columns; the in-flight direction carries
/// its full mixer state.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    /// Canonical content hash of the request this state belongs to
    /// (rejected on resume if it does not match the job's request).
    pub key: [u64; 2],
    /// Latest captured SCF state (`None` = SCF had not yet reached its
    /// first iteration boundary; resume recomputes from scratch).
    pub scf: Option<ScfCheckpoint>,
    /// Directions already converged, in direction order.
    pub dirs_done: Vec<JobDoneDirection>,
    /// The direction that was interrupted mid-cycle, if any.
    pub cur_dir: Option<JobDirCheckpoint>,
}

impl JobCheckpoint {
    /// Serialize to the framed `QPCK` byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::default();
        e.put_u64(self.key[0]);
        e.put_u64(self.key[1]);
        match &self.scf {
            Some(scf) => {
                e.put_u64(1);
                scf.encode_payload(&mut e);
            }
            None => e.put_u64(0),
        }
        e.put_usize(self.dirs_done.len());
        for d in &self.dirs_done {
            e.put_usize(d.iterations);
            for &a in &d.alpha_col {
                e.put_f64(a);
            }
        }
        match &self.cur_dir {
            Some(cur) => {
                e.put_u64(1);
                cur.encode_payload(&mut e);
            }
            None => e.put_u64(0),
        }
        frame(KIND_JOB, &e.buf)
    }

    /// Decode from framed bytes, verifying header and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(unframe(bytes, KIND_JOB)?);
        let key = [d.u64()?, d.u64()?];
        let scf = match d.u64()? {
            0 => None,
            1 => Some(ScfCheckpoint::decode_payload(&mut d)?),
            _ => return Err(ResilError::Format("bad option tag")),
        };
        let n_done = d.counted(8 + 24)?;
        let mut dirs_done = Vec::with_capacity(n_done);
        for _ in 0..n_done {
            let iterations = d.usize()?;
            let mut alpha_col = [0.0; 3];
            for a in &mut alpha_col {
                *a = d.f64()?;
            }
            dirs_done.push(JobDoneDirection {
                iterations,
                alpha_col,
            });
        }
        let cur_dir = match d.u64()? {
            0 => None,
            1 => Some(JobDirCheckpoint::decode_payload(&mut d)?),
            _ => return Err(ResilError::Format("bad option tag")),
        };
        d.finish()?;
        Ok(JobCheckpoint {
            key,
            scf,
            dirs_done,
            cur_dir,
        })
    }

    /// Atomically write to `path` (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Load and verify from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, vals: &[f64]) -> DMatrix {
        DMatrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    fn sample_dfpt() -> DfptCheckpoint {
        DfptCheckpoint {
            dir: 2,
            iteration: 7,
            c1: mat(2, 2, &[0.1, -0.2, 0.3, f64::MIN_POSITIVE]),
            p1: mat(2, 2, &[1.0, 2.0, 3.0, -4.0]),
            residual: 1.25e-5,
            diis_in: vec![mat(2, 2, &[0.9, 0.8, 0.7, 0.6]), mat(2, 2, &[0.5; 4])],
            diis_res: vec![mat(2, 2, &[1e-2; 4]), mat(2, 2, &[-1e-3, 1e-3, 0.0, 2e-3])],
        }
    }

    #[test]
    fn dfpt_round_trip_is_bit_exact() {
        let ck = sample_dfpt();
        let back = DfptCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
        for (a, b) in back.c1.as_slice().iter().zip(ck.c1.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scf_file_round_trip() {
        let dir = std::env::temp_dir().join("qp_resil_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scf.qpck");
        let ck = ScfCheckpoint {
            iteration: 12,
            energy: -75.91234,
            p_mat: mat(3, 3, &[1., 0., 0., 0., 2., 0., 0., 0., 3.]),
            diis_in: vec![mat(3, 3, &[0.5; 9]), mat(3, 3, &[0.25; 9])],
            diis_res: vec![mat(3, 3, &[1e-3; 9]), mat(3, 3, &[1e-4; 9])],
        };
        ck.save(&path).unwrap();
        assert_eq!(ScfCheckpoint::load(&path).unwrap(), ck);
        // The atomic-write temp file must not survive.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    fn sample_job() -> JobCheckpoint {
        JobCheckpoint {
            key: [0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321],
            scf: Some(ScfCheckpoint {
                iteration: 9,
                energy: -75.123,
                p_mat: mat(2, 2, &[1.0, 0.5, 0.5, 2.0]),
                diis_in: vec![mat(2, 2, &[0.25; 4])],
                diis_res: vec![mat(2, 2, &[1e-4; 4])],
            }),
            dirs_done: vec![JobDoneDirection {
                iterations: 11,
                alpha_col: [8.25, -0.001, f64::MIN_POSITIVE],
            }],
            cur_dir: Some(JobDirCheckpoint {
                dir: 1,
                iteration: 4,
                residual: 3.5e-4,
                p1: mat(2, 2, &[0.0, 1.0, 1.0, -2.0]),
                diis_in: vec![mat(2, 2, &[0.125; 4]); 2],
                diis_res: vec![mat(2, 2, &[-1e-5; 4]); 2],
            }),
        }
    }

    #[test]
    fn job_round_trip_is_bit_exact() {
        let ck = sample_job();
        let back = JobCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
        let a = back.dirs_done[0].alpha_col[2];
        assert_eq!(a.to_bits(), f64::MIN_POSITIVE.to_bits());
        // Sparse variants (no SCF seed, no in-flight direction) too.
        let bare = JobCheckpoint {
            scf: None,
            cur_dir: None,
            ..ck
        };
        assert_eq!(JobCheckpoint::from_bytes(&bare.to_bytes()).unwrap(), bare);
    }

    #[test]
    fn job_file_round_trip_and_kind_isolation() {
        let dir = std::env::temp_dir().join("qp_resil_job_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.qpck");
        let ck = sample_job();
        ck.save(&path).unwrap();
        assert_eq!(JobCheckpoint::load(&path).unwrap(), ck);
        assert!(!path.with_extension("tmp").exists());
        // The other readers must refuse a job checkpoint, and vice versa.
        assert!(matches!(
            ScfCheckpoint::from_bytes(&ck.to_bytes()),
            Err(ResilError::Format(_))
        ));
        assert!(matches!(
            JobCheckpoint::from_bytes(&sample_dfpt().to_bytes()),
            Err(ResilError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn job_corruption_and_truncation_detected() {
        let bytes = sample_job().to_bytes();
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 2] ^= 0x10;
        assert!(JobCheckpoint::from_bytes(&corrupt).is_err());
        assert!(JobCheckpoint::from_bytes(&bytes[..n - 9]).is_err());
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut bytes = sample_dfpt().to_bytes();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        assert!(matches!(
            DfptCheckpoint::from_bytes(&bytes),
            Err(ResilError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let bytes = sample_dfpt().to_bytes();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            let out = DfptCheckpoint::from_bytes(&bytes[..cut]);
            assert!(
                matches!(out, Err(ResilError::Format(_))),
                "cut at {cut}: {out:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_version_and_kind_rejected() {
        let ck = sample_dfpt();
        let mut bad_magic = ck.to_bytes();
        bad_magic[0] = b'X';
        assert!(matches!(
            DfptCheckpoint::from_bytes(&bad_magic),
            Err(ResilError::Format(_))
        ));

        let mut bad_version = ck.to_bytes();
        bad_version[4] = 99;
        assert!(matches!(
            DfptCheckpoint::from_bytes(&bad_version),
            Err(ResilError::Format(_))
        ));

        // An SCF reader must refuse a DFPT checkpoint.
        assert!(matches!(
            ScfCheckpoint::from_bytes(&ck.to_bytes()),
            Err(ResilError::Format(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn round_trip_preserves_every_bit(
            rows in 1usize..6,
            cols in 1usize..6,
            iteration in 0usize..1000,
            vals in prop::collection::vec(-1.0e3f64..1.0e3, 200),
            hist in 0usize..4,
        ) {
            let n = rows * cols;
            let take = |k: usize| mat(rows, cols, &vals[k * n..(k + 1) * n]);
            let ck = ScfCheckpoint {
                iteration,
                energy: vals[0],
                p_mat: take(0),
                diis_in: (0..hist).map(take).collect(),
                diis_res: (0..hist).map(|k| take(k + hist)).collect(),
            };
            let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
            prop_assert_eq!(&back, &ck);
            for (a, b) in back.p_mat.as_slice().iter().zip(ck.p_mat.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn any_single_bit_flip_is_detected(
            byte_frac in 0.0f64..1.0,
            bit in 0usize..8,
        ) {
            let bytes = sample_dfpt().to_bytes();
            let mut mutated = bytes.clone();
            let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            mutated[idx] ^= 1 << bit;
            // Either the structure check or the checksum must catch it —
            // a flipped bit may corrupt the header or the payload.
            prop_assert!(DfptCheckpoint::from_bytes(&mutated).is_err());
        }
    }
}
