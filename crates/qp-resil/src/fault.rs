//! `QP_FAULT`: a seeded, deterministic fault plan in one spec string.
//!
//! Grammar (clauses separated by `;`, keys by `,`):
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := 'seed=' u64
//!          | 'crash:'   rank=R|any , iter=K [, point=NAME]
//!          | 'stall:'   rank=R|any , iter=K , ms=M [, point=NAME]
//!          | 'drop:'    src=S , dst=D , tag=T [, nth=N]
//!          | 'corrupt:' src=S , dst=D , tag=T , scale=X [, nth=N]
//! ```
//!
//! Examples:
//!
//! * `seed=1;crash:rank=1,iter=3` — rank 1 dies entering its 3rd
//!   driver iteration (any [`Comm::fault_point`]).
//! * `seed=7;crash:rank=any,iter=2,point=dfpt.iter` — a seed-chosen rank
//!   dies entering DFPT iteration 2.
//! * `seed=2;drop:src=0,dst=1,tag=9,nth=2` — the 2nd message 0→1 with
//!   tag 9 is lost; the receiver times out.
//! * `seed=3;stall:rank=2,iter=3,ms=20;crash:rank=2,iter=5` — rank 2
//!   stalls 20 ms at iteration 3, then dies at iteration 5.
//!
//! Every clause fires **once per process** (the supervised restart must not
//! re-trigger the same crash), and every firing is appended to an event log
//! readable via [`FaultPlan::events`] — two runs of the same spec against
//! the same program produce identical logs, which is the reproducibility
//! contract the integration tests check.
//!
//! [`Comm::fault_point`]: qp_mpi::Comm::fault_point

use crate::{ResilError, Result};
use parking_lot::Mutex;
use qp_mpi::{FaultDecision, FaultHook};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A rank selector: explicit, or chosen from the seed once the world size
/// is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankSel {
    Rank(usize),
    Any,
}

#[derive(Debug, Clone, PartialEq)]
enum Clause {
    Crash {
        rank: RankSel,
        iter: u64,
        point: Option<String>,
    },
    Stall {
        rank: RankSel,
        iter: u64,
        ms: u64,
        point: Option<String>,
    },
    Drop {
        src: usize,
        dst: usize,
        tag: u64,
        nth: u64,
    },
    Corrupt {
        src: usize,
        dst: usize,
        tag: u64,
        nth: u64,
        scale: f64,
    },
}

#[derive(Default)]
struct PlanState {
    /// Per-clause resolved rank (`usize::MAX` for p2p clauses).
    resolved: Vec<usize>,
    /// Per-clause one-shot flag.
    fired: Vec<bool>,
    /// Message sequence numbers per (src, dst, tag).
    send_seq: HashMap<(usize, usize, u64), u64>,
    /// Every fault that actually fired, in order.
    events: Vec<String>,
    bound: bool,
}

/// The deterministic fault plan: parsed once from a spec string, installed
/// into the `qp-mpi` runtime, shared (one `Arc`) across supervised
/// restarts so one-shot faults stay fired.
pub struct FaultPlan {
    seed: u64,
    clauses: Vec<Clause>,
    state: Mutex<PlanState>,
}

/// splitmix64: the seed→rank resolution function for `rank=any`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_kv(part: &str) -> Result<(&str, &str)> {
    part.split_once('=')
        .map(|(k, v)| (k.trim(), v.trim()))
        .ok_or_else(|| ResilError::Parse(format!("expected key=value, got `{part}`")))
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T> {
    v.parse()
        .map_err(|_| ResilError::Parse(format!("bad value for {key}: `{v}`")))
}

fn parse_rank(v: &str) -> Result<RankSel> {
    if v == "any" {
        Ok(RankSel::Any)
    } else {
        Ok(RankSel::Rank(parse_num("rank", v)?))
    }
}

fn take_key<'a>(kv: &mut HashMap<&'a str, &'a str>, head: &str, k: &str) -> Result<&'a str> {
    kv.remove(k)
        .ok_or_else(|| ResilError::Parse(format!("`{head}` clause missing `{k}=`")))
}

impl FaultPlan {
    /// Parse a `QP_FAULT` spec string.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut seed = 0u64;
        let mut clauses = Vec::new();
        for clause_str in spec.split(';') {
            let clause_str = clause_str.trim();
            if clause_str.is_empty() {
                continue;
            }
            if let Some(v) = clause_str.strip_prefix("seed=") {
                seed = parse_num("seed", v.trim())?;
                continue;
            }
            let (head, body) = clause_str.split_once(':').ok_or_else(|| {
                ResilError::Parse(format!("expected `kind:key=value,...`, got `{clause_str}`"))
            })?;
            let mut kv: HashMap<&str, &str> = HashMap::new();
            for part in body.split(',') {
                let (k, v) = parse_kv(part)?;
                if kv.insert(k, v).is_some() {
                    return Err(ResilError::Parse(format!(
                        "duplicate key `{k}` in `{clause_str}`"
                    )));
                }
            }
            let head = head.trim();
            let clause = match head {
                "crash" => Clause::Crash {
                    rank: parse_rank(take_key(&mut kv, head, "rank")?)?,
                    iter: parse_num("iter", take_key(&mut kv, head, "iter")?)?,
                    point: kv.remove("point").map(str::to_string),
                },
                "stall" => Clause::Stall {
                    rank: parse_rank(take_key(&mut kv, head, "rank")?)?,
                    iter: parse_num("iter", take_key(&mut kv, head, "iter")?)?,
                    ms: parse_num("ms", take_key(&mut kv, head, "ms")?)?,
                    point: kv.remove("point").map(str::to_string),
                },
                "drop" => Clause::Drop {
                    src: parse_num("src", take_key(&mut kv, head, "src")?)?,
                    dst: parse_num("dst", take_key(&mut kv, head, "dst")?)?,
                    tag: parse_num("tag", take_key(&mut kv, head, "tag")?)?,
                    nth: kv
                        .remove("nth")
                        .map(|v| parse_num("nth", v))
                        .transpose()?
                        .unwrap_or(1),
                },
                "corrupt" => Clause::Corrupt {
                    src: parse_num("src", take_key(&mut kv, head, "src")?)?,
                    dst: parse_num("dst", take_key(&mut kv, head, "dst")?)?,
                    tag: parse_num("tag", take_key(&mut kv, head, "tag")?)?,
                    scale: parse_num("scale", take_key(&mut kv, head, "scale")?)?,
                    nth: kv
                        .remove("nth")
                        .map(|v| parse_num("nth", v))
                        .transpose()?
                        .unwrap_or(1),
                },
                other => {
                    return Err(ResilError::Parse(format!("unknown fault kind `{other}`")));
                }
            };
            if !kv.is_empty() {
                let mut extra: Vec<&str> = kv.into_keys().collect();
                extra.sort_unstable();
                return Err(ResilError::Parse(format!(
                    "unknown key(s) {extra:?} in `{clause_str}`"
                )));
            }
            clauses.push(clause);
        }
        if clauses.is_empty() {
            return Err(ResilError::Parse("spec contains no fault clauses".into()));
        }
        let n = clauses.len();
        Ok(FaultPlan {
            seed,
            clauses,
            state: Mutex::new(PlanState {
                resolved: vec![usize::MAX; n],
                fired: vec![false; n],
                ..PlanState::default()
            }),
        })
    }

    /// Parse the `QP_FAULT` environment variable, if set.
    pub fn from_env() -> Result<Option<Arc<FaultPlan>>> {
        match std::env::var("QP_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(Arc::new(FaultPlan::parse(&spec)?))),
            _ => Ok(None),
        }
    }

    /// The seed in effect.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The log of every fault that fired so far, in firing order.
    pub fn events(&self) -> Vec<String> {
        self.state.lock().events.clone()
    }

    fn rank_matches(&self, st: &PlanState, idx: usize, sel: RankSel, rank: usize) -> bool {
        match sel {
            RankSel::Rank(r) => r == rank,
            RankSel::Any => st.resolved[idx] == rank,
        }
    }
}

impl FaultHook for FaultPlan {
    fn bind_world(&self, size: usize) {
        let mut st = self.state.lock();
        if st.bound || size == 0 {
            return;
        }
        st.bound = true;
        for (idx, clause) in self.clauses.iter().enumerate() {
            let sel = match clause {
                Clause::Crash { rank, .. } | Clause::Stall { rank, .. } => *rank,
                _ => continue,
            };
            if sel == RankSel::Any {
                st.resolved[idx] = (splitmix64(self.seed.wrapping_add(idx as u64)) as usize) % size;
            }
        }
    }

    fn at_point(&self, rank: usize, point: &str, index: u64) -> FaultDecision {
        let mut st = self.state.lock();
        for (idx, clause) in self.clauses.iter().enumerate() {
            if st.fired[idx] {
                continue;
            }
            match clause {
                Clause::Crash {
                    rank: sel,
                    iter,
                    point: pt,
                } if *iter == index
                    && pt.as_deref().is_none_or(|p| p == point)
                    && self.rank_matches(&st, idx, *sel, rank) =>
                {
                    st.fired[idx] = true;
                    st.events
                        .push(format!("crash rank={rank} point={point} iter={index}"));
                    return FaultDecision::Crash;
                }
                Clause::Stall {
                    rank: sel,
                    iter,
                    ms,
                    point: pt,
                } if *iter == index
                    && pt.as_deref().is_none_or(|p| p == point)
                    && self.rank_matches(&st, idx, *sel, rank) =>
                {
                    st.fired[idx] = true;
                    st.events.push(format!(
                        "stall rank={rank} point={point} iter={index} ms={ms}"
                    ));
                    return FaultDecision::Stall(Duration::from_millis(*ms));
                }
                _ => {}
            }
        }
        FaultDecision::Continue
    }

    fn on_send(&self, src: usize, dest: usize, tag: u64, data: &mut Vec<f64>) -> bool {
        let mut st = self.state.lock();
        let seq = st.send_seq.entry((src, dest, tag)).or_insert(0);
        *seq += 1;
        let seq = *seq;
        for (idx, clause) in self.clauses.iter().enumerate() {
            if st.fired[idx] {
                continue;
            }
            match clause {
                Clause::Drop {
                    src: s,
                    dst,
                    tag: t,
                    nth,
                } if *s == src && *dst == dest && *t == tag && *nth == seq => {
                    st.fired[idx] = true;
                    st.events
                        .push(format!("drop src={src} dst={dest} tag={tag} nth={seq}"));
                    return false;
                }
                Clause::Corrupt {
                    src: s,
                    dst,
                    tag: t,
                    nth,
                    scale,
                } if *s == src && *dst == dest && *t == tag && *nth == seq => {
                    st.fired[idx] = true;
                    st.events.push(format!(
                        "corrupt src={src} dst={dest} tag={tag} nth={seq} scale={scale}"
                    ));
                    for v in data.iter_mut() {
                        *v *= scale;
                    }
                    return true;
                }
                _ => {}
            }
        }
        true
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("clauses", &self.clauses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_once_at_the_named_iteration() {
        let plan = FaultPlan::parse("seed=1;crash:rank=1,iter=3").unwrap();
        plan.bind_world(4);
        assert_eq!(plan.at_point(1, "dfpt.iter", 2), FaultDecision::Continue);
        assert_eq!(plan.at_point(0, "dfpt.iter", 3), FaultDecision::Continue);
        assert_eq!(plan.at_point(1, "dfpt.iter", 3), FaultDecision::Crash);
        // One-shot: the restarted run sails past iteration 3.
        assert_eq!(plan.at_point(1, "dfpt.iter", 3), FaultDecision::Continue);
        assert_eq!(plan.events(), vec!["crash rank=1 point=dfpt.iter iter=3"]);
    }

    #[test]
    fn point_filter_restricts_the_hook() {
        let plan = FaultPlan::parse("crash:rank=0,iter=2,point=dfpt.iter").unwrap();
        plan.bind_world(2);
        assert_eq!(plan.at_point(0, "scf.iter", 2), FaultDecision::Continue);
        assert_eq!(plan.at_point(0, "dfpt.iter", 2), FaultDecision::Crash);
    }

    #[test]
    fn any_rank_is_seed_deterministic() {
        let resolve = |seed: u64, size: usize| {
            let plan = FaultPlan::parse(&format!("seed={seed};crash:rank=any,iter=1")).unwrap();
            plan.bind_world(size);
            (0..size).find(|&r| plan.at_point(r, "x", 1) == FaultDecision::Crash)
        };
        let a = resolve(42, 8).expect("some rank crashes");
        let b = resolve(42, 8).expect("some rank crashes");
        assert_eq!(a, b, "same seed, same victim");
        // Different seeds eventually pick different victims.
        assert!(
            (0..32).any(|s| resolve(s, 8) != Some(a)),
            "seed must influence the victim"
        );
    }

    #[test]
    fn drop_hits_the_nth_message_only() {
        let plan = FaultPlan::parse("drop:src=0,dst=1,tag=9,nth=2").unwrap();
        let mut m = vec![1.0];
        assert!(plan.on_send(0, 1, 9, &mut m), "1st delivered");
        assert!(!plan.on_send(0, 1, 9, &mut m), "2nd dropped");
        assert!(plan.on_send(0, 1, 9, &mut m), "3rd delivered");
        // Other channels unaffected.
        assert!(plan.on_send(1, 0, 9, &mut m));
        assert_eq!(plan.events(), vec!["drop src=0 dst=1 tag=9 nth=2"]);
    }

    #[test]
    fn corrupt_scales_payload() {
        let plan = FaultPlan::parse("corrupt:src=1,dst=0,tag=4,scale=-2.0").unwrap();
        let mut m = vec![1.0, -3.0];
        assert!(plan.on_send(1, 0, 4, &mut m));
        assert_eq!(m, vec![-2.0, 6.0]);
        // One-shot: the next message passes untouched.
        let mut m2 = vec![5.0];
        assert!(plan.on_send(1, 0, 4, &mut m2));
        assert_eq!(m2, vec![5.0]);
    }

    #[test]
    fn stall_returns_duration() {
        let plan = FaultPlan::parse("stall:rank=2,iter=3,ms=20").unwrap();
        assert_eq!(
            plan.at_point(2, "dfpt.iter", 3),
            FaultDecision::Stall(Duration::from_millis(20))
        );
    }

    #[test]
    fn multi_clause_specs_parse() {
        let plan =
            FaultPlan::parse("seed=3;stall:rank=2,iter=3,ms=20;crash:rank=2,iter=5").unwrap();
        assert_eq!(plan.seed(), 3);
        assert_eq!(
            plan.at_point(2, "dfpt.iter", 3),
            FaultDecision::Stall(Duration::from_millis(20))
        );
        assert_eq!(plan.at_point(2, "dfpt.iter", 5), FaultDecision::Crash);
        assert_eq!(plan.events().len(), 2);
    }

    #[test]
    fn malformed_specs_rejected() {
        for bad in [
            "",
            "frobnicate:rank=1",
            "crash:iter=3",
            "crash:rank=1",
            "crash:rank=x,iter=1",
            "crash:rank=1,iter=1,bogus=2",
            "drop:src=0,dst=1",
            "seed=notanumber;crash:rank=1,iter=1",
            "crash rank=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
