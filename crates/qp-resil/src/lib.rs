//! # qp-resil
//!
//! Resilience machinery for the exascale DFPT stack: at the scale of the
//! paper's runs (tens of thousands of nodes, hours of wall-clock), node
//! failure is an expected event, not an exception. This crate supplies the
//! three pieces the supervised drivers in `qp-core` are built from:
//!
//! * [`fault`] — a deterministic, seeded [`FaultPlan`] parsed from a single
//!   `QP_FAULT` spec string and installed into the `qp-mpi` runtime through
//!   its [`FaultHook`] points: rank crash at iteration *k*, message drop or
//!   corruption on the n-th matching send, slow-rank stalls. The same spec
//!   reproduces the same failure (and therefore the same recovery trace)
//!   run after run.
//! * [`checkpoint`] — a versioned, checksummed, hand-rolled binary format
//!   (`QPCK`) snapshotting SCF state (density matrix + Pulay history) and
//!   per-direction DFPT state (`C¹`, `P¹`, residual), written atomically
//!   (temp file + rename) and restored round-trip bit-exact.
//! * [`recovery`] — the [`Supervisor`]: retries a failed SPMD region from
//!   its last checkpoint, charges the modeled recovery cost (checkpoint
//!   write, respawn, restore broadcast) to the `qp-machine` simulated
//!   clock, and emits `qp-trace` spans on the `resil` phase.
//!
//! [`FaultHook`]: qp_mpi::FaultHook

pub mod checkpoint;
pub mod fault;
pub mod recovery;

pub use checkpoint::{
    DfptCheckpoint, JobCheckpoint, JobDirCheckpoint, JobDoneDirection, ScfCheckpoint,
};
pub use fault::FaultPlan;
pub use qp_mpi::{FaultDecision, FaultHook};
pub use recovery::{RecoveryPolicy, RecoveryStats, Supervisor};

/// Errors produced by the resilience layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilError {
    /// Filesystem error while writing or reading a checkpoint.
    Io(String),
    /// Structurally invalid checkpoint (bad magic, version, kind, or
    /// truncated payload).
    Format(&'static str),
    /// Payload bytes do not match the stored checksum (corruption).
    Checksum { expected: u64, got: u64 },
    /// Invalid `QP_FAULT` specification.
    Parse(String),
}

impl std::fmt::Display for ResilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            ResilError::Format(what) => write!(f, "invalid checkpoint: {what}"),
            ResilError::Checksum { expected, got } => write!(
                f,
                "checkpoint corrupted: checksum {got:#018x} != stored {expected:#018x}"
            ),
            ResilError::Parse(e) => write!(f, "invalid QP_FAULT spec: {e}"),
        }
    }
}

impl std::error::Error for ResilError {}

impl From<std::io::Error> for ResilError {
    fn from(e: std::io::Error) -> Self {
        ResilError::Io(e.to_string())
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ResilError>;
