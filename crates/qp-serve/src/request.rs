//! Typed job requests: parse-and-validate untrusted protocol JSON into the
//! engine's option structs, and derive the canonical content address the
//! result cache and checkpoint store key on.
//!
//! ## Content addressing
//!
//! Two requests share a cache entry iff they describe the *same physics*:
//! geometry (element + position bits per atom), basis, grid, SCF and DFPT
//! options. Execution knobs — thread count, cache policy, tenant — are
//! deliberately excluded: the engine's determinism invariant guarantees the
//! result is bit-identical at any thread count, so caching across them is
//! sound. The canonical form renders every `f64` as `to_bits()` hex, so two
//! floats collide only when they are the same bit pattern. The 128-bit FNV
//! pair is the index; the full canonical string is stored alongside and
//! compared exactly, so hash collisions cannot alias results.

use crate::json::Json;
use crate::ServeError;
use qp_chem::basis::BasisSettings;
use qp_chem::geometry::Structure;
use qp_chem::grids::GridSettings;
use qp_core::{DfptOptions, FarFieldMode, ScfOptions, ScreeningMode};
use std::fmt::Write as _;

/// Where the molecule comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum MoleculeSpec {
    /// A named builtin from `qp_chem::structures` (`water`, `ligand`,
    /// `polymer:N`, `helix:N`).
    Builtin(String),
    /// Inline XYZ text (Å).
    Xyz(String),
    /// Inline FHI-aims `geometry.in` text (Å).
    GeometryIn(String),
}

/// One validated simulation request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Fair-share accounting bucket.
    pub tenant: String,
    /// The molecule source, as submitted.
    pub molecule: MoleculeSpec,
    /// The parsed structure (validated at admission, not at run time).
    pub structure: Structure,
    /// NAO basis setting.
    pub basis: BasisSettings,
    /// Integration grid.
    pub grid: GridSettings,
    /// Ground-state SCF options.
    pub scf: ScfOptions,
    /// DFPT response-cycle options.
    pub dfpt: DfptOptions,
    /// Worker thread-pool size for this job (`None` = server default).
    pub threads: Option<usize>,
    /// Skip the cache lookup (result is still stored).
    pub cache_bypass: bool,
    /// Cutoff-sphere screening control. Execution knob: the screened path
    /// is bit-identical to dense, so this is excluded from the cache key.
    pub screening: ScreeningMode,
    /// Hartree far-field evaluation control. Execution knob like
    /// `screening`: the tree path agrees with direct within
    /// `QP_FARFIELD_TOL`, so it is excluded from the cache key.
    pub farfield: FarFieldMode,
}

/// Guardrail on admitted structure size: the serial engine is O(N³) in
/// basis functions; anything past this is a denial-of-service, not a job.
const MAX_ATOMS: usize = 4096;

/// Guardrail on per-job thread requests.
const MAX_THREADS: usize = 1024;

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

fn opt_f64(obj: &Json, key: &str, what: &str) -> Result<Option<f64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| bad(format!("{what}.{key} must be a number")))?;
            if !x.is_finite() {
                return Err(bad(format!("{what}.{key} must be finite")));
            }
            Ok(Some(x))
        }
    }
}

fn opt_usize(obj: &Json, key: &str, what: &str) -> Result<Option<usize>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| bad(format!("{what}.{key} must be a non-negative integer"))),
    }
}

impl JobRequest {
    /// Parse and validate a request object. Every field except `molecule`
    /// is optional; every present field is type- and range-checked so a
    /// malformed request is rejected at admission with a typed error, never
    /// handed to the engine.
    pub fn from_json(v: &Json) -> Result<JobRequest, ServeError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(bad("request must be a JSON object"));
        }
        let tenant = match v.get("tenant") {
            None => "default".to_string(),
            Some(t) => {
                let t = t.as_str().ok_or_else(|| bad("tenant must be a string"))?;
                if t.is_empty() || t.len() > 64 {
                    return Err(bad("tenant must be 1..=64 characters"));
                }
                t.to_string()
            }
        };

        let mol = v.get("molecule").ok_or_else(|| bad("missing 'molecule'"))?;
        let molecule = if let Some(b) = mol.get("builtin") {
            MoleculeSpec::Builtin(
                b.as_str()
                    .ok_or_else(|| bad("molecule.builtin must be a string"))?
                    .to_string(),
            )
        } else if let Some(x) = mol.get("xyz") {
            MoleculeSpec::Xyz(
                x.as_str()
                    .ok_or_else(|| bad("molecule.xyz must be a string"))?
                    .to_string(),
            )
        } else if let Some(g) = mol.get("geometry_in") {
            MoleculeSpec::GeometryIn(
                g.as_str()
                    .ok_or_else(|| bad("molecule.geometry_in must be a string"))?
                    .to_string(),
            )
        } else {
            return Err(bad(
                "molecule must have one of 'builtin', 'xyz', 'geometry_in'",
            ));
        };
        let structure = resolve_molecule(&molecule)?;
        if structure.atoms.is_empty() {
            return Err(bad("molecule has no atoms"));
        }
        if structure.atoms.len() > MAX_ATOMS {
            return Err(bad(format!(
                "molecule has {} atoms (limit {MAX_ATOMS})",
                structure.atoms.len()
            )));
        }

        let basis = match v.get("basis") {
            None => BasisSettings::Light,
            Some(b) => match b.as_str() {
                Some("light") => BasisSettings::Light,
                Some("tier2") => BasisSettings::Tier2,
                _ => return Err(bad("basis must be 'light' or 'tier2'")),
            },
        };

        let gv = v.get("grid");
        let mut grid = match gv.and_then(|g| g.get("preset")) {
            None => GridSettings::light(),
            Some(p) => match p.as_str() {
                Some("light") => GridSettings::light(),
                Some("coarse") => GridSettings::coarse(),
                _ => return Err(bad("grid.preset must be 'light' or 'coarse'")),
            },
        };
        if let Some(g) = gv {
            if let Some(n) = opt_usize(g, "n_radial", "grid")? {
                if n == 0 || n > 4096 {
                    return Err(bad("grid.n_radial must be 1..=4096"));
                }
                grid.n_radial = n;
            }
            if let Some(n) = opt_usize(g, "max_angular", "grid")? {
                grid.max_angular = n;
            }
            if let Some(n) = opt_usize(g, "min_angular", "grid")? {
                grid.min_angular = n;
            }
            if grid.min_angular > grid.max_angular {
                return Err(bad("grid.min_angular must be <= grid.max_angular"));
            }
        }

        let mut scf = ScfOptions::default();
        if let Some(s) = v.get("scf") {
            if let Some(t) = opt_f64(s, "tol", "scf")? {
                if t <= 0.0 {
                    return Err(bad("scf.tol must be positive"));
                }
                scf.tol = t;
            }
            if let Some(m) = opt_f64(s, "mixing", "scf")? {
                if m <= 0.0 || m > 1.0 {
                    return Err(bad("scf.mixing must be in (0, 1]"));
                }
                scf.mixing = m;
            }
            if let Some(n) = opt_usize(s, "max_iter", "scf")? {
                if n == 0 || n > 100_000 {
                    return Err(bad("scf.max_iter must be 1..=100000"));
                }
                scf.max_iter = n;
            }
            if let Some(kt) = opt_f64(s, "smearing", "scf")? {
                if kt <= 0.0 {
                    return Err(bad("scf.smearing must be positive"));
                }
                scf.smearing = Some(kt);
            }
            match s.get("pulay") {
                None => {}
                Some(Json::Null) => scf.pulay = None,
                Some(p) => {
                    let d = p
                        .as_usize()
                        .ok_or_else(|| bad("scf.pulay must be an integer or null"))?;
                    scf.pulay = if d == 0 { None } else { Some(d.min(64)) };
                }
            }
        }

        let mut dfpt = DfptOptions::default();
        if let Some(d) = v.get("dfpt") {
            if let Some(t) = opt_f64(d, "tol", "dfpt")? {
                if t <= 0.0 {
                    return Err(bad("dfpt.tol must be positive"));
                }
                dfpt.tol = t;
            }
            if let Some(m) = opt_f64(d, "mixing", "dfpt")? {
                if m <= 0.0 || m > 1.0 {
                    return Err(bad("dfpt.mixing must be in (0, 1]"));
                }
                dfpt.mixing = m;
            }
            if let Some(n) = opt_usize(d, "max_iter", "dfpt")? {
                if n == 0 || n > 100_000 {
                    return Err(bad("dfpt.max_iter must be 1..=100000"));
                }
                dfpt.max_iter = n;
            }
        }

        let threads = opt_usize(v, "threads", "request")?;
        if let Some(t) = threads {
            if t == 0 || t > MAX_THREADS {
                return Err(bad(format!("threads must be 1..={MAX_THREADS}")));
            }
        }

        let cache_bypass = match v.get("cache") {
            None => false,
            Some(c) => match c.as_str() {
                Some("use") => false,
                Some("bypass") => true,
                _ => return Err(bad("cache must be 'use' or 'bypass'")),
            },
        };

        let screening = match v.get("screening") {
            None | Some(Json::Null) => ScreeningMode::Auto,
            Some(s) => s
                .as_str()
                .ok_or_else(|| bad("screening must be a string"))?
                .parse()
                .map_err(bad)?,
        };

        let farfield = match v.get("farfield") {
            None | Some(Json::Null) => FarFieldMode::Auto,
            Some(s) => s
                .as_str()
                .ok_or_else(|| bad("farfield must be a string"))?
                .parse()
                .map_err(bad)?,
        };

        Ok(JobRequest {
            tenant,
            molecule,
            structure,
            basis,
            grid,
            scf,
            dfpt,
            threads,
            cache_bypass,
            screening,
            farfield,
        })
    }

    /// The canonical content-address string: physics in, execution knobs
    /// out (see module docs). Stable across protocol versions that do not
    /// change the physics inputs.
    pub fn canonical(&self) -> String {
        let mut s = String::with_capacity(256 + 56 * self.structure.atoms.len());
        s.push_str("qp-serve/v1;mol=");
        for a in &self.structure.atoms {
            let _ = write!(
                s,
                "{}:{:016x}:{:016x}:{:016x};",
                a.element.symbol(),
                a.position[0].to_bits(),
                a.position[1].to_bits(),
                a.position[2].to_bits()
            );
        }
        let _ = write!(
            s,
            "basis={};",
            match self.basis {
                BasisSettings::Light => "light",
                BasisSettings::Tier2 => "tier2",
            }
        );
        let g = &self.grid;
        let _ = write!(
            s,
            "grid=nr:{},rmin:{:016x},rmax:{:016x},maxang:{},minang:{},pcut:{:016x};",
            g.n_radial,
            g.r_min.to_bits(),
            g.r_max.to_bits(),
            g.max_angular,
            g.min_angular,
            g.partition_cutoff.to_bits()
        );
        let c = &self.scf;
        let _ = write!(
            s,
            "scf=maxit:{},tol:{:016x},mix:{:016x},smear:{},pulay:{};",
            c.max_iter,
            c.tol.to_bits(),
            c.mixing.to_bits(),
            match c.smearing {
                Some(kt) => format!("{:016x}", kt.to_bits()),
                None => "none".to_string(),
            },
            match c.pulay {
                Some(d) => d.to_string(),
                None => "none".to_string(),
            }
        );
        let d = &self.dfpt;
        let _ = write!(
            s,
            "dfpt=maxit:{},tol:{:016x},mix:{:016x},mixer:{}",
            d.max_iter,
            d.tol.to_bits(),
            d.mixing.to_bits(),
            match d.mixer {
                qp_core::DfptMixer::Linear => "linear".to_string(),
                qp_core::DfptMixer::Pulay { depth } => format!("pulay{depth}"),
            }
        );
        s
    }

    /// 128-bit FNV-1a pair over the canonical string — the cache/checkpoint
    /// index key. Collisions are tolerated: lookups compare the full
    /// canonical string before serving.
    pub fn key(&self) -> [u64; 2] {
        let canon = self.canonical();
        [
            fnv1a64(canon.as_bytes(), 0xcbf2_9ce4_8422_2325),
            fnv1a64(canon.as_bytes(), 0x6c62_272e_07bb_0142),
        ]
    }
}

fn fnv1a64(bytes: &[u8], offset_basis: u64) -> u64 {
    let mut h = offset_basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Resolve a molecule spec into a validated structure.
fn resolve_molecule(spec: &MoleculeSpec) -> Result<Structure, ServeError> {
    match spec {
        MoleculeSpec::Builtin(name) => {
            let (base, param) = match name.split_once(':') {
                Some((n, p)) => (n, Some(p)),
                None => (name.as_str(), None),
            };
            let chain_len = |p: Option<&str>| -> Result<usize, ServeError> {
                let n: usize = p
                    .unwrap_or("10")
                    .parse()
                    .map_err(|_| bad("builtin chain length must be an integer"))?;
                if n == 0 || n > 512 {
                    return Err(bad("builtin chain length must be 1..=512"));
                }
                Ok(n)
            };
            match base {
                "water" => Ok(qp_chem::structures::water()),
                "ligand" => Ok(qp_chem::structures::ligand49()),
                "polymer" => Ok(qp_chem::structures::polyethylene(chain_len(param)?)),
                "helix" => Ok(qp_chem::structures::helix(chain_len(param)?)),
                other => Err(bad(format!("unknown builtin '{other}'"))),
            }
        }
        MoleculeSpec::Xyz(text) => {
            qp_chem::io::parse_xyz(text).map_err(|e| ServeError::BadRequest(format!("xyz: {e}")))
        }
        MoleculeSpec::GeometryIn(text) => qp_chem::io::parse_geometry_in(text)
            .map_err(|e| ServeError::BadRequest(format!("geometry.in: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn req(s: &str) -> Result<JobRequest, ServeError> {
        JobRequest::from_json(&parse(s).unwrap())
    }

    #[test]
    fn minimal_request_defaults() {
        let r = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        assert_eq!(r.tenant, "default");
        assert_eq!(r.structure.atoms.len(), 3);
        assert_eq!(r.scf.tol, ScfOptions::default().tol);
        assert!(!r.cache_bypass);
    }

    #[test]
    fn key_ignores_execution_knobs() {
        let a = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        let b = req(
            r#"{"tenant":"other","molecule":{"builtin":"water"},"threads":4,"cache":"bypass","screening":"on","farfield":"tree"}"#,
        )
        .unwrap();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn key_sees_physics_changes() {
        let a = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        for other in [
            r#"{"molecule":{"builtin":"polymer:2"}}"#,
            r#"{"molecule":{"builtin":"water"},"basis":"tier2"}"#,
            r#"{"molecule":{"builtin":"water"},"scf":{"tol":1e-9}}"#,
            r#"{"molecule":{"builtin":"water"},"dfpt":{"mixing":0.5}}"#,
            r#"{"molecule":{"builtin":"water"},"grid":{"n_radial":24}}"#,
        ] {
            let b = req(other).unwrap();
            assert_ne!(a.key(), b.key(), "{other}");
        }
    }

    #[test]
    fn same_geometry_different_sources_share_a_key() {
        // The key is over the *parsed* structure, so an inline XYZ carrying
        // the same coordinates as the builtin hits the same cache line.
        let a = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        let mut xyz = String::from("3\nwater\n");
        const BOHR_TO_ANG: f64 = 0.529177210903;
        for at in &a.structure.atoms {
            xyz.push_str(&format!(
                "{} {:.17e} {:.17e} {:.17e}\n",
                at.element.symbol(),
                at.position[0] * BOHR_TO_ANG,
                at.position[1] * BOHR_TO_ANG,
                at.position[2] * BOHR_TO_ANG
            ));
        }
        let b = JobRequest::from_json(
            &parse(&format!(r#"{{"molecule":{{"xyz":{}}}}}"#, Json::Str(xyz))).unwrap(),
        )
        .unwrap();
        // Positions must round-trip bit-exactly for the keys to match; if
        // the io layer's unit conversion perturbs the last ulp the keys
        // (correctly) differ — assert only on the builtin path invariant.
        if b.structure.atoms == a.structure.atoms {
            assert_eq!(a.key(), b.key());
        } else {
            assert_ne!(a.key(), b.key());
        }
    }

    #[test]
    fn large_polymer_is_admitted_and_screening_parses() {
        // n=256 polyethylene (6n+2 = 1538 atoms) must clear MAX_ATOMS so the
        // weak-scaling scenario is servable end to end.
        let r = req(r#"{"molecule":{"builtin":"polymer:256"},"screening":"on"}"#).unwrap();
        assert_eq!(r.structure.atoms.len(), 1538);
        assert_eq!(r.screening, ScreeningMode::On);
        let r = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        assert_eq!(r.screening, ScreeningMode::Auto);
        let r = req(r#"{"molecule":{"builtin":"water"},"screening":"off"}"#).unwrap();
        assert_eq!(r.screening, ScreeningMode::Off);
    }

    #[test]
    fn farfield_parses_and_defaults_to_auto() {
        let r = req(r#"{"molecule":{"builtin":"water"}}"#).unwrap();
        assert_eq!(r.farfield, FarFieldMode::Auto);
        let r = req(r#"{"molecule":{"builtin":"water"},"farfield":"tree"}"#).unwrap();
        assert_eq!(r.farfield, FarFieldMode::Tree);
        let r = req(r#"{"molecule":{"builtin":"water"},"farfield":"direct"}"#).unwrap();
        assert_eq!(r.farfield, FarFieldMode::Direct);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad_req in [
            r#"{}"#,
            r#"{"molecule":{}}"#,
            r#"{"molecule":{"builtin":"plutonium"}}"#,
            r#"{"molecule":{"builtin":"polymer:0"}}"#,
            r#"{"molecule":{"builtin":"water"},"basis":"heavy"}"#,
            r#"{"molecule":{"builtin":"water"},"scf":{"tol":-1}}"#,
            r#"{"molecule":{"builtin":"water"},"scf":{"mixing":2}}"#,
            r#"{"molecule":{"builtin":"water"},"threads":0}"#,
            r#"{"molecule":{"builtin":"water"},"cache":"maybe"}"#,
            r#"{"molecule":{"builtin":"water"},"grid":{"preset":"ultrafine"}}"#,
            r#"{"molecule":{"xyz":"not an xyz file"}}"#,
            r#"{"molecule":{"builtin":"water"},"dfpt":{"max_iter":0}}"#,
            r#"{"molecule":{"builtin":"water"},"screening":"sometimes"}"#,
            r#"{"molecule":{"builtin":"water"},"screening":7}"#,
            r#"{"molecule":{"builtin":"water"},"farfield":"octree"}"#,
            r#"{"molecule":{"builtin":"water"},"farfield":3}"#,
        ] {
            let e = req(bad_req).unwrap_err();
            assert!(matches!(e, ServeError::BadRequest(_)), "{bad_req} -> {e:?}");
        }
    }
}
