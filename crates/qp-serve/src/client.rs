//! Blocking protocol client — the library behind `qperturb submit` /
//! `wait` / `stats` / `shutdown` and the `bench_serve` traffic generator.

use crate::json::{obj, parse, Json};
use crate::result::JobResultData;
use crate::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a qp-serve instance. Each call sends one request line
/// and reads replies until the operation's final line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Outcome of a submit/wait: job id plus the result (when completed).
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Whether the result came from the content-addressed cache.
    pub cached: bool,
    /// The result — `None` when submitted without waiting.
    pub result: Option<JobResultData>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Internal(format!("connect {addr}: {e}")))?;
        // One-line request/reply traffic: Nagle + delayed ACK would add
        // ~40ms to every cache hit, swamping the O(1) lookup it reports.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::Internal(format!("clone stream: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn send(&mut self, v: &Json) -> Result<(), ServeError> {
        writeln!(self.writer, "{}", v).map_err(ServeError::Io)
    }

    fn recv(&mut self) -> Result<Json, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(ServeError::Io)?;
        if n == 0 {
            return Err(ServeError::Unavailable("connection closed".into()));
        }
        parse(line.trim()).map_err(|e| ServeError::Internal(format!("bad reply: {e}")))
    }

    /// Read replies, forwarding `{"event":"progress"}` lines to
    /// `on_progress`, until the final (non-event) reply arrives.
    fn recv_final(&mut self, mut on_progress: impl FnMut(&str)) -> Result<Json, ServeError> {
        loop {
            let v = self.recv()?;
            if v.get("event").and_then(|e| e.as_str()) == Some("progress") {
                if let Some(line) = v.get("line").and_then(|l| l.as_str()) {
                    on_progress(line);
                }
                continue;
            }
            return Ok(v);
        }
    }

    /// Submit a request. With `wait`, blocks until the job completes (or is
    /// served from cache); with `stream` also set, forwards progress lines.
    pub fn submit(
        &mut self,
        request: Json,
        wait: bool,
        stream: bool,
        on_progress: impl FnMut(&str),
    ) -> Result<SubmitOutcome, ServeError> {
        self.send(&obj(vec![
            ("op", Json::Str("submit".to_string())),
            ("request", request),
            ("wait", Json::Bool(wait)),
            ("stream", Json::Bool(stream)),
        ]))?;
        let v = self.recv_final(on_progress)?;
        Self::outcome(&v)
    }

    /// Block until `job` completes; forwards progress when `stream`.
    pub fn wait(
        &mut self,
        job: u64,
        stream: bool,
        on_progress: impl FnMut(&str),
    ) -> Result<SubmitOutcome, ServeError> {
        self.send(&obj(vec![
            ("op", Json::Str("wait".to_string())),
            ("job", Json::Num(job as f64)),
            ("stream", Json::Bool(stream)),
        ]))?;
        let v = self.recv_final(on_progress)?;
        Self::outcome(&v)
    }

    /// One status snapshot for `job` (raw reply object).
    pub fn status(&mut self, job: u64) -> Result<Json, ServeError> {
        self.send(&obj(vec![
            ("op", Json::Str("status".to_string())),
            ("job", Json::Num(job as f64)),
        ]))?;
        self.checked()
    }

    /// Server counters (raw reply object).
    pub fn stats(&mut self) -> Result<Json, ServeError> {
        self.send(&obj(vec![("op", Json::Str("stats".to_string()))]))?;
        self.checked()
    }

    /// Ask the server to checkpoint-and-requeue `job`.
    pub fn preempt(&mut self, job: u64) -> Result<(), ServeError> {
        self.send(&obj(vec![
            ("op", Json::Str("preempt".to_string())),
            ("job", Json::Num(job as f64)),
        ]))?;
        self.checked().map(|_| ())
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.send(&obj(vec![("op", Json::Str("shutdown".to_string()))]))?;
        self.checked().map(|_| ())
    }

    fn checked(&mut self) -> Result<Json, ServeError> {
        let v = self.recv()?;
        Self::check_ok(&v)?;
        Ok(v)
    }

    fn check_ok(v: &Json) -> Result<(), ServeError> {
        if v.get("ok").and_then(|b| b.as_bool()) == Some(true) {
            Ok(())
        } else {
            let msg = v
                .get("error")
                .and_then(|e| e.as_str())
                .unwrap_or("unknown server error")
                .to_string();
            Err(ServeError::Remote(msg))
        }
    }

    fn outcome(v: &Json) -> Result<SubmitOutcome, ServeError> {
        Self::check_ok(v)?;
        let job = v
            .get("job")
            .and_then(|j| j.as_usize())
            .ok_or_else(|| ServeError::Internal("reply missing job id".into()))?
            as u64;
        let cached = v.get("cached").and_then(|b| b.as_bool()).unwrap_or(false);
        let result = v.get("result").and_then(JobResultData::from_json);
        Ok(SubmitOutcome {
            job,
            cached,
            result,
        })
    }
}
