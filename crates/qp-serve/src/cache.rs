//! The content-addressed result cache: canonical request → completed
//! result, O(1) on repeats.
//!
//! Indexed by the 128-bit FNV pair over the canonical string; each bucket
//! stores the full canonical string and compares it exactly before serving,
//! so a hash collision degrades to a miss, never to a wrong answer. Safe to
//! share across tenants because the key contains every physics input and
//! the engine is deterministic — there is exactly one right answer per key.

use crate::result::JobResultData;
use std::collections::HashMap;
use std::sync::Mutex;

#[derive(Default)]
struct CacheInner {
    map: HashMap<[u64; 2], Vec<(String, JobResultData)>>,
    hits: u64,
    misses: u64,
    entries: usize,
}

/// Thread-safe result cache (interior mutability; one lock, short critical
/// sections — the values are a few hundred bytes each).
#[derive(Default)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

/// A snapshot of cache counters for the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Distinct results stored.
    pub entries: usize,
}

impl ResultCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up by key + canonical string. Counts a hit or a miss.
    pub fn get(&self, key: [u64; 2], canonical: &str) -> Option<JobResultData> {
        let mut inner = self.inner.lock().unwrap();
        let found = inner
            .map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(c, _)| c == canonical))
            .map(|(_, r)| r.clone());
        if found.is_some() {
            inner.hits += 1;
        } else {
            inner.misses += 1;
        }
        found
    }

    /// Store a completed result. Idempotent: re-inserting the same
    /// canonical string replaces the entry (the engine is deterministic, so
    /// the value is necessarily identical).
    pub fn put(&self, key: [u64; 2], canonical: &str, result: JobResultData) {
        let mut inner = self.inner.lock().unwrap();
        let bucket = inner.map.entry(key).or_default();
        match bucket.iter_mut().find(|(c, _)| c == canonical) {
            Some((_, r)) => *r = result,
            None => {
                bucket.push((canonical.to_string(), result));
                inner.entries += 1;
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_linalg::DMatrix;

    fn result(tag: f64) -> JobResultData {
        JobResultData {
            energy: tag,
            scf_iterations: 1,
            dipole: [0.0; 3],
            alpha: DMatrix::zeros(3, 3),
            dfpt_iterations: [1, 1, 1],
            isotropic: 0.0,
            anisotropy: 0.0,
        }
    }

    #[test]
    fn hit_miss_and_replace() {
        let cache = ResultCache::new();
        assert_eq!(cache.get([1, 2], "a"), None);
        cache.put([1, 2], "a", result(1.0));
        assert_eq!(cache.get([1, 2], "a").unwrap().energy, 1.0);
        cache.put([1, 2], "a", result(1.0));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn colliding_keys_with_different_canonicals_do_not_alias() {
        let cache = ResultCache::new();
        cache.put([7, 7], "physics-A", result(1.0));
        cache.put([7, 7], "physics-B", result(2.0));
        assert_eq!(cache.get([7, 7], "physics-A").unwrap().energy, 1.0);
        assert_eq!(cache.get([7, 7], "physics-B").unwrap().energy, 2.0);
        assert_eq!(cache.get([7, 7], "physics-C"), None);
        assert_eq!(cache.stats().entries, 2);
    }
}
