//! The job engine: runs one admitted request end to end — SCF, then the
//! three DFPT directions — through the preemptible entry points in
//! `qp-core`, writing `QPCK` job checkpoints at iteration boundaries.
//!
//! Two invariants this module is responsible for:
//!
//! * **Bit-identity with the CLI.** The computation is the exact sequence
//!   the `qperturb` direct path executes — `System::build(..)` with the
//!   same batching constants, `scf`, `DfptShared::new`, per-direction
//!   Sternheimer cycles, `α` columns contracted with the shared dipole
//!   matrices. A request served here, served from cache, or run via the
//!   CLI produces the same bits.
//! * **Bit-exact preempt/resume.** Preemption only happens at iteration
//!   boundaries, where the loop-carried state (density/response matrix +
//!   DIIS history) fully determines the remainder of the run. The `QPCK`
//!   kind-3 checkpoint captures exactly that state; resuming replays the
//!   identical floating-point sequence.

use crate::request::JobRequest;
use crate::result::JobResultData;
use crate::ServeError;
use qp_core::{
    dfpt_direction_preemptible, properties, scf_preemptible, DfptDirState, DfptShared, DirOutcome,
    ScfOutcome, ScfState, System,
};
use qp_linalg::DMatrix;
use qp_resil::{JobCheckpoint, JobDirCheckpoint, JobDoneDirection, ScfCheckpoint};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// Outcome of one engine pass over a job.
pub enum EngineOutcome {
    /// The job ran to completion.
    Done(JobResultData),
    /// The job was preempted; its state is in the returned checkpoint
    /// (already persisted if a checkpoint path was given).
    Preempted(Box<JobCheckpoint>),
}

/// Progress callback: receives one human-readable line per SCF/DFPT
/// iteration boundary.
pub type ProgressFn<'a> = dyn FnMut(&str) + 'a;

/// How often (in iterations) the engine persists a `QPCK` checkpoint while
/// running. Preemption and shutdown always persist regardless.
pub const CHECKPOINT_INTERVAL: usize = 2;

fn scf_state_to_ckpt(s: &ScfState) -> ScfCheckpoint {
    ScfCheckpoint {
        iteration: s.start_iter,
        energy: s.energy,
        p_mat: s.p_mat.clone(),
        diis_in: s.diis_in.clone(),
        diis_res: s.diis_res.clone(),
    }
}

fn scf_ckpt_to_state(c: ScfCheckpoint) -> ScfState {
    ScfState {
        start_iter: c.iteration,
        energy: c.energy,
        p_mat: c.p_mat,
        diis_in: c.diis_in,
        diis_res: c.diis_res,
    }
}

fn dir_state_to_ckpt(dir: usize, s: &DfptDirState) -> JobDirCheckpoint {
    JobDirCheckpoint {
        dir,
        iteration: s.iteration,
        residual: s.residual,
        p1: s.p1.clone(),
        diis_in: s.diis_in.clone(),
        diis_res: s.diis_res.clone(),
    }
}

fn dir_ckpt_to_state(c: JobDirCheckpoint) -> DfptDirState {
    DfptDirState {
        iteration: c.iteration,
        p1: c.p1,
        residual: c.residual,
        diis_in: c.diis_in,
        diis_res: c.diis_res,
    }
}

fn persist(ckpt: &JobCheckpoint, path: Option<&Path>) -> Result<(), ServeError> {
    if let Some(p) = path {
        ckpt.save(p)
            .map_err(|e| ServeError::Internal(format!("checkpoint write: {e}")))?;
    }
    Ok(())
}

/// Run (or resume) one job. `preempt` is polled at every iteration
/// boundary; when set, the engine persists a checkpoint and returns
/// [`EngineOutcome::Preempted`]. `ckpt_path` additionally gets a periodic
/// checkpoint every [`CHECKPOINT_INTERVAL`] iterations so a hard kill
/// (process death, no preempt handshake) loses at most that much work.
pub fn run_job(
    req: &JobRequest,
    resume: Option<JobCheckpoint>,
    ckpt_path: Option<&Path>,
    preempt: &AtomicBool,
    progress: &mut ProgressFn<'_>,
) -> Result<EngineOutcome, ServeError> {
    let key = req.key();
    if let Some(r) = &resume {
        if r.key != key {
            return Err(ServeError::Internal(
                "checkpoint does not belong to this request".into(),
            ));
        }
    }
    let (scf_seed, mut dirs_done, mut cur_dir) = match resume {
        Some(r) => (r.scf, r.dirs_done, r.cur_dir),
        None => (None, Vec::new(), None),
    };

    // Same build constants as the CLI direct path — part of the
    // bit-identity contract.
    let system = System::build_with_modes(
        req.structure.clone(),
        req.basis,
        &req.grid,
        200,
        4,
        req.screening,
        req.farfield,
    );
    progress(&format!(
        "system: {} basis functions, {} grid points",
        system.n_basis(),
        system.n_points()
    ));

    // --- Ground state -----------------------------------------------------
    // The SCF seed is the latest non-converged state; resume replays the
    // short tail of the cycle, which determinism makes exact.
    let incoming_scf_seed = scf_seed.clone();
    let mut latest_scf: Option<ScfState> = None;
    let scf_out = scf_preemptible(
        &system,
        &req.scf,
        scf_seed.map(scf_ckpt_to_state),
        &mut |st| {
            progress(&format!(
                "scf iter={} energy={:.10}",
                st.start_iter, st.energy
            ));
            let stop = preempt.load(Ordering::Relaxed);
            if stop || st.start_iter % CHECKPOINT_INTERVAL == 0 {
                let ckpt = JobCheckpoint {
                    key,
                    scf: Some(scf_state_to_ckpt(st)),
                    dirs_done: Vec::new(),
                    cur_dir: None,
                };
                // Persist failures surface on the preempt path below; a
                // periodic write that fails only costs resume granularity.
                let _ = persist(&ckpt, ckpt_path);
            }
            latest_scf = Some(st.clone());
            !stop
        },
    )
    .map_err(|e| ServeError::Engine(format!("SCF failed: {e}")))?;

    let ground = match scf_out {
        ScfOutcome::Converged(g) => g,
        ScfOutcome::Preempted(st) => {
            let ckpt = JobCheckpoint {
                key,
                scf: Some(scf_state_to_ckpt(&st)),
                dirs_done: Vec::new(),
                cur_dir: None,
            };
            persist(&ckpt, ckpt_path)?;
            progress(&format!("preempted during scf at iter={}", st.start_iter));
            return Ok(EngineOutcome::Preempted(Box::new(ckpt)));
        }
    };
    // Prefer the freshest captured state; fall back to the seed we resumed
    // from (a fast tail replay may converge before a new capture fires).
    let scf_seed_for_ckpt = latest_scf
        .as_ref()
        .map(scf_state_to_ckpt)
        .or(incoming_scf_seed);
    progress(&format!(
        "scf converged: {} iterations, E={:.10} Ha",
        ground.iterations, ground.energy
    ));

    // --- Response ---------------------------------------------------------
    let shared = DfptShared::new(&system, &ground);
    let dipole = properties::dipole_moment(&system, &ground);

    while dirs_done.len() < 3 {
        let j = dirs_done.len();
        let dir_resume = match cur_dir.take() {
            Some(c) if c.dir == j => Some(dir_ckpt_to_state(c)),
            // A checkpoint from an older protocol round with a stale
            // direction index restarts that direction from scratch;
            // determinism keeps the result identical either way.
            _ => None,
        };
        let outcome = dfpt_direction_preemptible(
            &system,
            &ground,
            &shared,
            j,
            &req.dfpt,
            dir_resume,
            &mut |st| {
                progress(&format!(
                    "dfpt dir={j} iter={} residual={:.3e}",
                    st.iteration, st.residual
                ));
                let stop = preempt.load(Ordering::Relaxed);
                if stop || st.iteration % CHECKPOINT_INTERVAL == 0 {
                    let ckpt = JobCheckpoint {
                        key,
                        scf: scf_seed_for_ckpt.clone(),
                        dirs_done: dirs_done.clone(),
                        cur_dir: Some(dir_state_to_ckpt(j, st)),
                    };
                    let _ = persist(&ckpt, ckpt_path);
                }
                !stop
            },
        )
        .map_err(|e| ServeError::Engine(format!("DFPT dir {j} failed: {e}")))?;

        match outcome {
            DirOutcome::Converged(resp) => {
                let mut alpha_col = [0.0; 3];
                for (i, a) in alpha_col.iter_mut().enumerate() {
                    *a = resp
                        .p1
                        .trace_product(&shared.dips[i])
                        .expect("conforming dims");
                }
                dirs_done.push(JobDoneDirection {
                    iterations: resp.iterations,
                    alpha_col,
                });
                progress(&format!(
                    "dfpt dir={j} converged in {} iterations",
                    resp.iterations
                ));
            }
            DirOutcome::Preempted(st) => {
                let ckpt = JobCheckpoint {
                    key,
                    scf: scf_seed_for_ckpt.clone(),
                    dirs_done: dirs_done.clone(),
                    cur_dir: Some(dir_state_to_ckpt(j, &st)),
                };
                persist(&ckpt, ckpt_path)?;
                progress(&format!(
                    "preempted during dfpt dir={j} at iter={}",
                    st.iteration
                ));
                return Ok(EngineOutcome::Preempted(Box::new(ckpt)));
            }
        }
    }

    let mut alpha = DMatrix::zeros(3, 3);
    let mut iterations = [0usize; 3];
    for (j, d) in dirs_done.iter().enumerate() {
        for i in 0..3 {
            alpha[(i, j)] = d.alpha_col[i];
        }
        iterations[j] = d.iterations;
    }
    // The job is done; its checkpoint is stale state, not history.
    if let Some(p) = ckpt_path {
        let _ = std::fs::remove_file(p);
    }
    let isotropic = properties::isotropic_polarizability(&alpha);
    let anisotropy = properties::polarizability_anisotropy(&alpha);
    Ok(EngineOutcome::Done(JobResultData {
        energy: ground.energy,
        scf_iterations: ground.iterations,
        dipole,
        alpha,
        dfpt_iterations: iterations,
        isotropic,
        anisotropy,
    }))
}
