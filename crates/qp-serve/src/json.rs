//! Minimal JSON for the wire protocol: a recursive-descent parser hardened
//! for untrusted socket input (depth cap, size-checked escapes, strict
//! grammar — no trailing garbage, no NaN/Infinity literals) and a
//! deterministic writer.
//!
//! The writer formats `f64` with Rust's shortest-round-trip `Display`, so a
//! value survives write → parse → write *bit-exactly*. That property is
//! what lets the CI smoke leg compare a served result against a direct CLI
//! run with a plain byte comparison.

use std::fmt::Write as _;

/// Nesting cap for untrusted input: a few levels of object/array are all
/// the protocol ever uses; deeply nested input is an attack, not a request.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve key order (the writer re-emits
/// them as received; canonical payloads are constructed key-by-key).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite; the grammar has no NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractional
    /// and negative values — option counts, thread counts, job ids).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialization: one compact line, shortest-round-trip floats (so
/// `to_string()` is the canonical byte form).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Build an object from pairs — the writer-side convenience.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shortest-round-trip float formatting; non-finite values (which the
/// parser can never produce and the engine never emits) degrade to `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Display on f64 is shortest-round-trip: parse(format(v)) == v.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset, for actionable protocol diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so bytes
                    // are valid UTF-8; find the char at this byte offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("invalid number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("invalid number"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for src in [
            "null",
            "true",
            "[1,2.5,-3e-4]",
            "{\"a\":[{\"b\":\"c\"}],\"d\":null}",
            "\"esc \\\" \\\\ \\n \\u0041\"",
        ] {
            let v = parse(src).unwrap();
            let out = v.to_string();
            assert_eq!(parse(&out).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            -2.718281828459045e-12,
            f64::MIN_POSITIVE,
            9.869604401089358,
        ] {
            let s = Json::Num(v).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"\\q\"",
            "\"\\ud800\"",
            "NaN",
            "Infinity",
            "1e999",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn usize_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }
}
