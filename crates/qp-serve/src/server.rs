//! The serving loop: a TCP listener speaking newline-delimited JSON,
//! thread-per-connection, with a fair-share worker pool executing jobs
//! through the checkpointed engine.
//!
//! ## Protocol
//!
//! One JSON object per line, one or more JSON lines back:
//!
//! | op         | fields                          | reply                       |
//! |------------|---------------------------------|-----------------------------|
//! | `submit`   | `request`, `wait?`, `stream?`   | job id, result if waited    |
//! | `status`   | `job`                           | state + recent progress     |
//! | `wait`     | `job`, `stream?`                | result (streams progress)   |
//! | `stats`    |                                 | cache/queue/usage counters  |
//! | `preempt`  | `job`                           | ack (checkpointed + requeued)|
//! | `shutdown` |                                 | ack, then the server drains |
//!
//! With `stream: true`, `submit --wait`/`wait` interleave
//! `{"event":"progress","line":...}` records before the final reply.
//!
//! ## Durability
//!
//! With a state dir, every job's request + terminal state is mirrored to
//! `job_<id>.meta.json` and its in-flight engine state to `job_<id>.qpck`.
//! A restarted server re-admits pending jobs (resuming from their
//! checkpoints) and re-seeds the result cache from completed ones, so a
//! `kill -9` mid-job costs at most one checkpoint interval of work and
//! zero correctness: the resumed job reproduces the uninterrupted bits.

use crate::cache::ResultCache;
use crate::engine::{self, EngineOutcome};
use crate::json::{obj, parse, Json};
use crate::request::JobRequest;
use crate::result::JobResultData;
use crate::sched::Scheduler;
use crate::ServeError;
use qp_resil::JobCheckpoint;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worker threads tag their OS thread with `BASE + job_id` so the span
/// observer can attribute qp-trace phase spans back to the job they ran
/// under (ordinary ranks live far below this).
const JOB_RANK_BASE: usize = 1 << 32;

/// Cap on stored progress lines per job; past it, span-derived lines are
/// dropped (counted) so a pathological job cannot hold the log hostage.
const PROGRESS_CAP: usize = 10_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Durability directory for job metadata + checkpoints (`None` =
    /// in-memory only; preemption still works, process death loses jobs).
    pub state_dir: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Fair-share time slice: a job holding a worker longer than this
    /// yields (at its next iteration boundary) to a hungrier tenant.
    pub slice: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: None,
            workers: 1,
            slice: Duration::from_millis(250),
        }
    }
}

/// Job lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done(JobResultData),
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

struct ProgressLog {
    lines: Vec<String>,
    dropped: usize,
}

struct Job {
    id: u64,
    tenant: String,
    request: JobRequest,
    /// The request as received, for state-dir persistence.
    request_json: Json,
    /// Canonical content address (cache + checkpoint validation).
    canonical: String,
    key: [u64; 2],
    state: Mutex<JobState>,
    progress: Mutex<ProgressLog>,
    cv: Condvar,
    preempt: AtomicBool,
    /// In-memory engine state of a preempted job (file mirror is in the
    /// state dir, when configured).
    ckpt: Mutex<Option<JobCheckpoint>>,
}

impl Job {
    fn push_progress(&self, line: &str, from_span: bool) {
        let mut log = self.progress.lock().unwrap();
        if from_span && log.lines.len() >= PROGRESS_CAP {
            log.dropped += 1;
        } else {
            log.lines.push(line.to_string());
        }
        drop(log);
        self.cv.notify_all();
    }

    fn set_state(&self, s: JobState) {
        *self.state.lock().unwrap() = s;
        self.cv.notify_all();
    }

    fn state(&self) -> JobState {
        self.state.lock().unwrap().clone()
    }
}

struct Shared {
    cfg: ServerConfig,
    sched: Scheduler,
    cache: ResultCache,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    preemptions: AtomicU64,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

impl Shared {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(&id).cloned()
    }

    fn meta_path(&self, id: u64) -> Option<PathBuf> {
        self.cfg
            .state_dir
            .as_ref()
            .map(|d| d.join(format!("job_{id}.meta.json")))
    }

    fn ckpt_path(&self, id: u64) -> Option<PathBuf> {
        self.cfg
            .state_dir
            .as_ref()
            .map(|d| d.join(format!("job_{id}.qpck")))
    }

    fn persist_meta(&self, job: &Job) {
        let Some(path) = self.meta_path(job.id) else {
            return;
        };
        let state = job.state();
        let mut pairs = vec![
            ("id", Json::Num(job.id as f64)),
            ("tenant", Json::Str(job.tenant.clone())),
            ("state", Json::Str(state.name().to_string())),
            ("request", job.request_json.clone()),
        ];
        match &state {
            JobState::Done(r) => pairs.push(("result", r.to_json())),
            JobState::Failed(e) => pairs.push(("error", Json::Str(e.clone()))),
            // Running is a transient of this process; a restart re-admits
            // the job from its checkpoint, so persist it as queued.
            JobState::Queued | JobState::Running => pairs[2].1 = Json::Str("queued".to_string()),
        }
        let body = obj(pairs).to_string();
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, body.as_bytes()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// A running server: bound address plus the thread handles to join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    listener: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves `:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr.lock().unwrap().expect("server bound")
    }

    /// Request shutdown programmatically (same path as the protocol op).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until the listener and all workers have exited.
    pub fn join(mut self) {
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        qp_trace::clear_span_observer();
    }
}

/// Bind, recover state, install the span observer, and spawn the listener
/// and worker threads.
pub fn start(cfg: ServerConfig) -> Result<ServerHandle, ServeError> {
    if cfg.workers == 0 {
        return Err(ServeError::BadRequest("workers must be >= 1".into()));
    }
    if let Some(d) = &cfg.state_dir {
        std::fs::create_dir_all(d)
            .map_err(|e| ServeError::Internal(format!("state dir {}: {e}", d.display())))?;
    }
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| ServeError::Internal(format!("bind {}: {e}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::Internal(format!("local_addr: {e}")))?;

    let shared = Arc::new(Shared {
        cfg,
        sched: Scheduler::new(),
        cache: ResultCache::new(),
        jobs: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(1),
        preemptions: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        addr: Mutex::new(Some(addr)),
    });

    recover_state(&shared);

    // Progress streaming: qp-trace spans closed on a worker thread tagged
    // with a job rank become progress lines on that job.
    {
        let obs = Arc::downgrade(&shared);
        qp_trace::set_span_observer(Arc::new(move |ev: &qp_trace::SpanEvent| {
            if ev.rank < JOB_RANK_BASE {
                return;
            }
            let Some(shared) = obs.upgrade() else { return };
            if let Some(job) = shared.job((ev.rank - JOB_RANK_BASE) as u64) {
                job.push_progress(
                    &format!(
                        "span phase={} name={} dur_ms={:.3}",
                        ev.phase.as_str(),
                        ev.name,
                        ev.dur_us / 1000.0
                    ),
                    true,
                );
            }
        }));
    }

    let mut workers = Vec::new();
    for w in 0..shared.cfg.workers {
        let shared = shared.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("qp-serve-worker-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServeError::Internal(format!("spawn worker: {e}")))?,
        );
    }

    let listener_shared = shared.clone();
    let listener_handle = std::thread::Builder::new()
        .name("qp-serve-listener".to_string())
        .spawn(move || accept_loop(listener, &listener_shared))
        .map_err(|e| ServeError::Internal(format!("spawn listener: {e}")))?;

    Ok(ServerHandle {
        shared,
        listener: Some(listener_handle),
        workers,
    })
}

/// Re-admit persisted jobs after a restart: completed jobs warm the result
/// cache, pending ones go back on the queue (their `QPCK` checkpoints are
/// picked up by the engine on claim).
fn recover_state(shared: &Arc<Shared>) {
    let Some(dir) = shared.cfg.state_dir.clone() else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut metas: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let id: u64 = name
                .strip_prefix("job_")?
                .strip_suffix(".meta.json")?
                .parse()
                .ok()?;
            Some((id, e.path()))
        })
        .collect();
    metas.sort();
    let mut max_id = 0;
    for (id, path) in metas {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(v) = parse(&text) else { continue };
        let Some(req_json) = v.get("request") else {
            continue;
        };
        let Ok(request) = JobRequest::from_json(req_json) else {
            continue;
        };
        let state = match v.get("state").and_then(|s| s.as_str()) {
            Some("done") => match v.get("result").and_then(JobResultData::from_json) {
                Some(r) => JobState::Done(r),
                None => continue,
            },
            Some("failed") => JobState::Failed(
                v.get("error")
                    .and_then(|e| e.as_str())
                    .unwrap_or("unknown")
                    .to_string(),
            ),
            Some("queued") => JobState::Queued,
            _ => continue,
        };
        max_id = max_id.max(id);
        let canonical = request.canonical();
        let key = request.key();
        if let JobState::Done(r) = &state {
            shared.cache.put(key, &canonical, r.clone());
        }
        let requeue = matches!(state, JobState::Queued);
        let job = Arc::new(Job {
            id,
            tenant: request.tenant.clone(),
            request,
            request_json: req_json.clone(),
            canonical,
            key,
            state: Mutex::new(state),
            progress: Mutex::new(ProgressLog {
                lines: vec!["recovered from state dir".to_string()],
                dropped: 0,
            }),
            cv: Condvar::new(),
            preempt: AtomicBool::new(false),
            ckpt: Mutex::new(None),
        });
        shared.jobs.lock().unwrap().insert(id, job.clone());
        if requeue {
            shared.sched.enqueue(id, &job.tenant);
        }
    }
    shared.next_id.store(max_id + 1, Ordering::Relaxed);
}

fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.sched.shutdown();
    // Running jobs yield at their next iteration boundary and persist
    // their checkpoints on the way out.
    for job in shared.jobs.lock().unwrap().values() {
        job.preempt.store(true, Ordering::Relaxed);
        job.cv.notify_all();
    }
    // Unblock the accept loop.
    if let Some(addr) = *shared.addr.lock().unwrap() {
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Newline-delimited request/reply: leaving Nagle on costs a
        // delayed-ACK round trip (~40ms) per reply line.
        let _ = stream.set_nodelay(true);
        let shared = shared.clone();
        let _ = std::thread::Builder::new()
            .name("qp-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply_err = |writer: &mut TcpStream, msg: String| -> std::io::Result<()> {
            let r = obj(vec![("ok", Json::Bool(false)), ("error", Json::Str(msg))]);
            writeln!(writer, "{}", r)
        };
        let v = match parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                reply_err(&mut writer, format!("malformed request: {e}"))?;
                continue;
            }
        };
        let op = v.get("op").and_then(|o| o.as_str()).unwrap_or("");
        let result = match op {
            "submit" => op_submit(&v, shared, &mut writer),
            "status" => op_status(&v, shared, &mut writer),
            "wait" => op_wait(&v, shared, &mut writer),
            "stats" => op_stats(shared, &mut writer),
            "preempt" => op_preempt(&v, shared, &mut writer),
            "shutdown" => {
                let r = obj(vec![("ok", Json::Bool(true))]);
                writeln!(writer, "{}", r)?;
                initiate_shutdown(shared);
                continue;
            }
            other => Err(ServeError::BadRequest(format!("unknown op '{other}'"))),
        };
        if let Err(e) = result {
            match e {
                ServeError::Io(io) => return Err(io),
                other => reply_err(&mut writer, other.to_string())?,
            }
        }
    }
}

/// Admit a request: validate, serve from cache when allowed, otherwise
/// register + enqueue. Returns the job (None when served purely from
/// cache was still given a job record — always Some).
fn admit(shared: &Arc<Shared>, req_json: &Json) -> Result<(Arc<Job>, bool), ServeError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ServeError::Unavailable("server is shutting down".into()));
    }
    let request = JobRequest::from_json(req_json)?;
    let canonical = request.canonical();
    let key = request.key();
    let cached = if request.cache_bypass {
        None
    } else {
        shared.cache.get(key, &canonical)
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let hit = cached.is_some();
    let state = match cached {
        Some(r) => JobState::Done(r),
        None => JobState::Queued,
    };
    let job = Arc::new(Job {
        id,
        tenant: request.tenant.clone(),
        request,
        request_json: req_json.clone(),
        canonical,
        key,
        state: Mutex::new(state),
        progress: Mutex::new(ProgressLog {
            lines: if hit {
                vec!["served from result cache".to_string()]
            } else {
                Vec::new()
            },
            dropped: 0,
        }),
        cv: Condvar::new(),
        preempt: AtomicBool::new(false),
        ckpt: Mutex::new(None),
    });
    shared.jobs.lock().unwrap().insert(id, job.clone());
    shared.persist_meta(&job);
    if !hit {
        shared.sched.enqueue(id, &job.tenant);
    }
    Ok((job, hit))
}

fn final_reply(job: &Job, cached: bool) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Num(job.id as f64)),
        ("cached", Json::Bool(cached)),
    ];
    match job.state() {
        JobState::Done(r) => pairs.push(("result", r.to_json())),
        JobState::Failed(e) => {
            pairs[0].1 = Json::Bool(false);
            pairs.push(("error", Json::Str(e)));
        }
        _ => pairs.push(("queued", Json::Bool(true))),
    }
    obj(pairs)
}

fn op_submit(v: &Json, shared: &Arc<Shared>, w: &mut TcpStream) -> Result<(), ServeError> {
    let req_json = v
        .get("request")
        .ok_or_else(|| ServeError::BadRequest("missing 'request'".into()))?;
    let wait = v.get("wait").and_then(|b| b.as_bool()).unwrap_or(false);
    let stream = v.get("stream").and_then(|b| b.as_bool()).unwrap_or(false);
    let (job, cached) = admit(shared, req_json)?;
    if wait && !cached {
        wait_for_job(&job, shared, stream, w)?;
    }
    writeln!(w, "{}", final_reply(&job, cached)).map_err(ServeError::Io)
}

fn op_status(v: &Json, shared: &Arc<Shared>, w: &mut TcpStream) -> Result<(), ServeError> {
    let job = lookup(v, shared)?;
    let log = job.progress.lock().unwrap();
    let tail: Vec<Json> = log
        .lines
        .iter()
        .rev()
        .take(20)
        .rev()
        .map(|l| Json::Str(l.clone()))
        .collect();
    let progress_total = log.lines.len() + log.dropped;
    drop(log);
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Num(job.id as f64)),
        ("state", Json::Str(job.state().name().to_string())),
        ("progress", Json::Arr(tail)),
        ("progress_total", Json::Num(progress_total as f64)),
    ];
    match job.state() {
        JobState::Done(r) => pairs.push(("result", r.to_json())),
        JobState::Failed(e) => pairs.push(("error", Json::Str(e))),
        _ => {}
    }
    writeln!(w, "{}", obj(pairs)).map_err(ServeError::Io)
}

fn op_wait(v: &Json, shared: &Arc<Shared>, w: &mut TcpStream) -> Result<(), ServeError> {
    let job = lookup(v, shared)?;
    let stream = v.get("stream").and_then(|b| b.as_bool()).unwrap_or(false);
    wait_for_job(&job, shared, stream, w)?;
    writeln!(w, "{}", final_reply(&job, false)).map_err(ServeError::Io)
}

/// Block until the job reaches a terminal state; with `stream`, forward
/// each new progress line as it appears.
fn wait_for_job(
    job: &Arc<Job>,
    shared: &Arc<Shared>,
    stream: bool,
    w: &mut TcpStream,
) -> Result<(), ServeError> {
    let mut sent = 0usize;
    loop {
        // Observe the state *before* draining: lines pushed before a
        // terminal flip are guaranteed to be forwarded.
        let terminal = matches!(job.state(), JobState::Done(_) | JobState::Failed(_));
        if stream {
            let lines: Vec<String> = {
                let log = job.progress.lock().unwrap();
                log.lines[sent.min(log.lines.len())..].to_vec()
            };
            for l in &lines {
                let ev = obj(vec![
                    ("event", Json::Str("progress".to_string())),
                    ("job", Json::Num(job.id as f64)),
                    ("line", Json::Str(l.clone())),
                ]);
                writeln!(w, "{}", ev).map_err(ServeError::Io)?;
            }
            sent += lines.len();
        }
        if terminal {
            return Ok(());
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::Unavailable(
                "server shut down while waiting".into(),
            ));
        }
        // Timed wait: robust against missed notifications and shutdown.
        let guard = job.progress.lock().unwrap();
        let _ = job
            .cv
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap();
    }
}

fn op_stats(shared: &Arc<Shared>, w: &mut TcpStream) -> Result<(), ServeError> {
    let cache = shared.cache.stats();
    let (mut queued, mut running, mut done, mut failed) = (0, 0, 0, 0);
    for job in shared.jobs.lock().unwrap().values() {
        match job.state() {
            JobState::Queued => queued += 1,
            JobState::Running => running += 1,
            JobState::Done(_) => done += 1,
            JobState::Failed(_) => failed += 1,
        }
    }
    let usage: Vec<(String, Json)> = shared
        .sched
        .usage_snapshot()
        .into_iter()
        .map(|(t, s)| (t, Json::Num(s)))
        .collect();
    let reply = obj(vec![
        ("ok", Json::Bool(true)),
        (
            "jobs",
            obj(vec![
                ("queued", Json::Num(queued as f64)),
                ("running", Json::Num(running as f64)),
                ("done", Json::Num(done as f64)),
                ("failed", Json::Num(failed as f64)),
            ]),
        ),
        (
            "cache",
            obj(vec![
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("entries", Json::Num(cache.entries as f64)),
            ]),
        ),
        (
            "preemptions",
            Json::Num(shared.preemptions.load(Ordering::Relaxed) as f64),
        ),
        ("usage", Json::Obj(usage)),
    ]);
    writeln!(w, "{}", reply).map_err(ServeError::Io)
}

fn op_preempt(v: &Json, shared: &Arc<Shared>, w: &mut TcpStream) -> Result<(), ServeError> {
    let job = lookup(v, shared)?;
    job.preempt.store(true, Ordering::Relaxed);
    let reply = obj(vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Num(job.id as f64)),
    ]);
    writeln!(w, "{}", reply).map_err(ServeError::Io)
}

fn lookup(v: &Json, shared: &Arc<Shared>) -> Result<Arc<Job>, ServeError> {
    let id = v
        .get("job")
        .and_then(|j| j.as_usize())
        .ok_or_else(|| ServeError::BadRequest("missing or invalid 'job'".into()))?
        as u64;
    shared
        .job(id)
        .ok_or_else(|| ServeError::BadRequest(format!("unknown job {id}")))
}

/// One worker: claim fair-share picks, run them through the engine, and
/// route outcomes (done → cache + persist; preempted → requeue; failed →
/// terminal error).
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(entry) = shared.sched.claim_next() {
        let Some(job) = shared.job(entry.job) else {
            shared.sched.release(entry.job, &entry.tenant, 0.0);
            continue;
        };
        job.preempt.store(false, Ordering::Relaxed);
        // Shutdown raced the claim: keep the job queued for the next start.
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.sched.release(entry.job, &entry.tenant, 0.0);
            continue;
        }
        job.set_state(JobState::Running);
        qp_trace::set_thread_rank(JOB_RANK_BASE + job.id as usize);
        let _lease = job.request.threads.map(qp_par::ThreadLease::exactly);

        let started = Instant::now();
        let resume = {
            let mem = job.ckpt.lock().unwrap().take();
            mem.or_else(|| {
                job.ckpt_path(shared)
                    .and_then(|p| JobCheckpoint::load(&p).ok())
            })
        };
        let ckpt_path = job.ckpt_path(shared);
        let outcome = {
            let job_ref = &job;
            let sched = &shared.sched;
            let slice = shared.cfg.slice;
            let mut progress = |line: &str| {
                job_ref.push_progress(line, false);
                // Fair-share preemption decision, taken at the iteration
                // boundary the engine is about to checkpoint on.
                if sched.should_preempt(&job_ref.tenant, started.elapsed(), slice) {
                    job_ref.preempt.store(true, Ordering::Relaxed);
                }
            };
            engine::run_job(
                &job.request,
                resume,
                ckpt_path.as_deref(),
                &job.preempt,
                &mut progress,
            )
        };
        qp_trace::set_thread_rank(0);
        let elapsed = started.elapsed().as_secs_f64();

        match outcome {
            Ok(EngineOutcome::Done(result)) => {
                shared.cache.put(job.key, &job.canonical, result.clone());
                job.set_state(JobState::Done(result));
                shared.persist_meta(&job);
                shared.sched.release(job.id, &job.tenant, elapsed);
            }
            Ok(EngineOutcome::Preempted(ckpt)) => {
                *job.ckpt.lock().unwrap() = Some(*ckpt);
                shared.preemptions.fetch_add(1, Ordering::Relaxed);
                job.set_state(JobState::Queued);
                shared.sched.release(job.id, &job.tenant, elapsed);
                if !shared.sched.is_shutdown() {
                    shared.sched.enqueue(job.id, &job.tenant);
                }
            }
            Err(e) => {
                job.set_state(JobState::Failed(e.to_string()));
                shared.persist_meta(&job);
                shared.sched.release(job.id, &job.tenant, elapsed);
            }
        }
    }
}

impl Job {
    fn ckpt_path(&self, shared: &Shared) -> Option<PathBuf> {
        shared.ckpt_path(self.id)
    }
}
