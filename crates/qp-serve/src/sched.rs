//! Fair-share job scheduling.
//!
//! Policy: each tenant accumulates cpu-seconds as its jobs run; when a
//! worker frees up it picks the pending job whose tenant has the *lowest*
//! cumulative usage (FIFO within a tenant, job-id order across ties — both
//! deterministic). A long-running job is preempted at its next iteration
//! boundary when (a) a tenant with strictly lower usage is waiting and (b)
//! the job has held the worker for at least one time slice. Preemption is
//! cooperative and checkpoint-shaped: the worker persists `QPCK` job state
//! and requeues, so the resumed job reproduces the uninterrupted result to
//! the bit.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A queued unit of work: job id + the tenant it bills to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Job id (admission order).
    pub job: u64,
    /// Fair-share accounting bucket.
    pub tenant: String,
}

#[derive(Default)]
struct SchedInner {
    pending: Vec<QueueEntry>,
    /// Cumulative cpu-seconds billed per tenant.
    usage: HashMap<String, f64>,
    /// Tenants currently holding a worker.
    running: HashMap<u64, String>,
    shutdown: bool,
}

/// The shared scheduler state workers and the admission path coordinate
/// through.
#[derive(Default)]
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

impl Scheduler {
    /// Fresh scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit a job to the pending queue and wake one worker.
    pub fn enqueue(&self, job: u64, tenant: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending.push(QueueEntry {
            job,
            tenant: tenant.to_string(),
        });
        drop(inner);
        self.cv.notify_one();
    }

    /// Worker side: block until a job is available (or shutdown), claim the
    /// fair-share pick, and mark it running. Returns `None` on shutdown.
    pub fn claim_next(&self) -> Option<QueueEntry> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(idx) = pick(&inner) {
                let entry = inner.pending.remove(idx);
                inner.usage.entry(entry.tenant.clone()).or_insert(0.0);
                inner.running.insert(entry.job, entry.tenant.clone());
                return Some(entry);
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Worker side: bill `secs` of work to `tenant` and release the running
    /// slot for `job`. Called whether the job finished, failed, or was
    /// preempted (a preempted job's partial slice still counts as usage —
    /// that is what keeps a requeue-loop from starving the other tenants).
    pub fn release(&self, job: u64, tenant: &str, secs: f64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.usage.entry(tenant.to_string()).or_insert(0.0) += secs;
        inner.running.remove(&job);
        drop(inner);
        self.cv.notify_one();
    }

    /// Should the running job for `tenant`, which has held its worker for
    /// `held` so far, yield at the next iteration boundary? True when a
    /// strictly less-served tenant is waiting and the slice is spent.
    pub fn should_preempt(&self, tenant: &str, held: Duration, slice: Duration) -> bool {
        if held < slice {
            return false;
        }
        let inner = self.inner.lock().unwrap();
        let mine = inner.usage.get(tenant).copied().unwrap_or(0.0) + held.as_secs_f64();
        inner.pending.iter().any(|e| {
            e.tenant != tenant && inner.usage.get(&e.tenant).copied().unwrap_or(0.0) < mine
        })
    }

    /// Cumulative usage per tenant (for the `stats` op).
    pub fn usage_snapshot(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock().unwrap();
        let mut v: Vec<_> = inner.usage.iter().map(|(t, &s)| (t.clone(), s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Pending-queue depth.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Stop all workers: pending jobs stay queued (they are persisted by
    /// the server's state dir), blocked `claim_next` calls return `None`.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }
}

/// The fair-share pick: pending entry whose tenant has minimal cumulative
/// usage; ties broken by job id (= admission order). Index into `pending`.
fn pick(inner: &SchedInner) -> Option<usize> {
    inner
        .pending
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let ua = inner.usage.get(&a.tenant).copied().unwrap_or(0.0);
            let ub = inner.usage.get(&b.tenant).copied().unwrap_or(0.0);
            ua.partial_cmp(&ub)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.job.cmp(&b.job))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tenant_fair_share_across() {
        let s = Scheduler::new();
        s.enqueue(1, "a");
        s.enqueue(2, "a");
        s.enqueue(3, "b");
        // Tenant "a" has burned an hour; "b" is fresh: b goes first.
        s.release(0, "a", 3600.0);
        assert_eq!(s.claim_next().unwrap().job, 3);
        assert_eq!(s.claim_next().unwrap().job, 1);
        assert_eq!(s.claim_next().unwrap().job, 2);
    }

    #[test]
    fn new_tenant_is_least_served() {
        let s = Scheduler::new();
        s.release(0, "veteran", 100.0);
        s.enqueue(1, "veteran");
        s.enqueue(2, "newcomer");
        assert_eq!(s.claim_next().unwrap().job, 2);
    }

    #[test]
    fn preemption_requires_spent_slice_and_hungrier_tenant() {
        let s = Scheduler::new();
        let slice = Duration::from_millis(100);
        // Nobody waiting: never preempt.
        assert!(!s.should_preempt("a", Duration::from_secs(10), slice));
        s.enqueue(1, "b");
        // Waiting tenant is hungrier, but slice not yet spent.
        assert!(!s.should_preempt("a", Duration::from_millis(10), slice));
        // Slice spent + hungrier waiter: yield.
        assert!(s.should_preempt("a", Duration::from_secs(10), slice));
        // Same tenant waiting on itself: no point yielding.
        let s2 = Scheduler::new();
        s2.enqueue(1, "a");
        assert!(!s2.should_preempt("a", Duration::from_secs(10), slice));
    }

    #[test]
    fn shutdown_unblocks_claims() {
        let s = std::sync::Arc::new(Scheduler::new());
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.claim_next());
        std::thread::sleep(Duration::from_millis(20));
        s.shutdown();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn preempted_partial_slice_counts_as_usage() {
        let s = Scheduler::new();
        s.enqueue(1, "a");
        let e = s.claim_next().unwrap();
        s.release(e.job, &e.tenant, 5.0);
        assert_eq!(s.usage_snapshot(), vec![("a".to_string(), 5.0)]);
    }
}
