//! The served result record and its canonical JSON form.
//!
//! One writer serves three consumers — the protocol's `done` responses, the
//! CLI's `--result-json` file, and the CI smoke leg's byte comparison — so
//! "bit-identical results" is checkable with `cmp(1)`: every `f64` is
//! rendered with shortest-round-trip `Display` by the `json` writer.

use crate::json::{obj, Json};
use qp_linalg::DMatrix;

/// Everything a completed job reports.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResultData {
    /// Kohn–Sham total energy (Hartree).
    pub energy: f64,
    /// Ground-state SCF iterations.
    pub scf_iterations: usize,
    /// Dipole moment (a.u.).
    pub dipole: [f64; 3],
    /// Polarizability tensor `α` (Bohr³), 3×3.
    pub alpha: DMatrix,
    /// DFPT iterations per Cartesian direction.
    pub dfpt_iterations: [usize; 3],
    /// `Tr(α)/3` (Bohr³).
    pub isotropic: f64,
    /// Polarizability anisotropy (Bohr³).
    pub anisotropy: f64,
}

impl JobResultData {
    /// The canonical JSON object (see module docs).
    pub fn to_json(&self) -> Json {
        let alpha_rows: Vec<Json> = (0..3)
            .map(|i| Json::Arr((0..3).map(|j| Json::Num(self.alpha[(i, j)])).collect()))
            .collect();
        obj(vec![
            ("energy", Json::Num(self.energy)),
            ("scf_iterations", Json::Num(self.scf_iterations as f64)),
            (
                "dipole",
                Json::Arr(self.dipole.iter().map(|&x| Json::Num(x)).collect()),
            ),
            ("alpha", Json::Arr(alpha_rows)),
            (
                "dfpt_iterations",
                Json::Arr(
                    self.dfpt_iterations
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            ("isotropic", Json::Num(self.isotropic)),
            ("anisotropy", Json::Num(self.anisotropy)),
        ])
    }

    /// Parse back from the canonical JSON object (state-dir recovery).
    pub fn from_json(v: &Json) -> Option<JobResultData> {
        let alpha_rows = v.get("alpha")?.as_arr()?;
        if alpha_rows.len() != 3 {
            return None;
        }
        let mut alpha = DMatrix::zeros(3, 3);
        for (i, row) in alpha_rows.iter().enumerate() {
            let row = row.as_arr()?;
            if row.len() != 3 {
                return None;
            }
            for (j, x) in row.iter().enumerate() {
                alpha[(i, j)] = x.as_f64()?;
            }
        }
        let tri = |key: &str| -> Option<Vec<f64>> {
            let a = v.get(key)?.as_arr()?;
            if a.len() != 3 {
                return None;
            }
            a.iter().map(|x| x.as_f64()).collect()
        };
        let dipole_v = tri("dipole")?;
        let iters = v.get("dfpt_iterations")?.as_arr()?;
        if iters.len() != 3 {
            return None;
        }
        let mut dfpt_iterations = [0usize; 3];
        for (k, n) in iters.iter().enumerate() {
            dfpt_iterations[k] = n.as_usize()?;
        }
        Some(JobResultData {
            energy: v.get("energy")?.as_f64()?,
            scf_iterations: v.get("scf_iterations")?.as_usize()?,
            dipole: [dipole_v[0], dipole_v[1], dipole_v[2]],
            alpha,
            dfpt_iterations,
            isotropic: v.get("isotropic")?.as_f64()?,
            anisotropy: v.get("anisotropy")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_is_bit_exact() {
        let mut alpha = DMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                alpha[(i, j)] = (1.0 + i as f64) / (3.0 + j as f64);
            }
        }
        let r = JobResultData {
            energy: -76.12345678901234,
            scf_iterations: 17,
            dipole: [0.1, -0.2, 1.0 / 3.0],
            alpha,
            dfpt_iterations: [8, 9, 10],
            isotropic: 9.87654321,
            anisotropy: 0.000123456,
        };
        let text = r.to_json().to_string();
        let back = JobResultData::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // And the serialized form is stable (same bits in -> same bytes out).
        assert_eq!(back.to_json().to_string(), text);
    }
}
