//! # qp-serve
//!
//! A multi-tenant DFPT simulation service over a local TCP socket: the
//! serving layer the paper's per-job pipeline was missing. Molecule +
//! perturbation requests arrive as newline-delimited JSON; the server
//! admits them through typed validation, schedules them fair-share across
//! tenants onto a worker pool, preempts long jobs at checkpoint boundaries
//! through `QPCK` kind-3 state (`qp-resil`), and serves repeated requests
//! O(1) from a content-addressed result cache.
//!
//! The whole design leans on one property of the engine: **bit-exact
//! determinism**. The same request produces the same bits serially, at any
//! `QP_THREADS`, after preempt/resume, and across server restarts — so the
//! cache can be shared across tenants, preemption is safe anywhere the
//! loop-carried state is complete, and the CI can compare a served result
//! against a direct CLI run with a byte-for-byte `cmp`.
//!
//! * [`json`] — hardened hand-rolled JSON (depth-capped parser, shortest
//!   round-trip `f64` writer: the wire format *is* the bit format).
//! * [`request`] — typed admission: untrusted JSON → validated
//!   [`request::JobRequest`] + canonical content address.
//! * [`cache`] — 128-bit-keyed, exact-string-verified result cache.
//! * [`sched`] — fair-share queue (min cumulative cpu-seconds per tenant)
//!   with cooperative checkpoint-boundary preemption decisions.
//! * [`engine`] — one job through `scf_preemptible` /
//!   `dfpt_direction_preemptible`, mirroring the CLI path bit-for-bit.
//! * [`server`] — listener + connection handlers + worker pool + state-dir
//!   durability (`job_<id>.meta.json` + `job_<id>.qpck`).
//! * [`client`] — the blocking client the CLI subcommands and
//!   `bench_serve` drive.

pub mod cache;
pub mod client;
pub mod engine;
pub mod json;
pub mod request;
pub mod result;
pub mod sched;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use client::{Client, SubmitOutcome};
pub use engine::{run_job, EngineOutcome};
pub use json::Json;
pub use request::{JobRequest, MoleculeSpec};
pub use result::JobResultData;
pub use sched::Scheduler;
pub use server::{start, ServerConfig, ServerHandle};

/// Errors across the serving stack.
#[derive(Debug)]
pub enum ServeError {
    /// The request failed validation — the client's fault, reported with a
    /// typed message and (at the CLI) a nonzero exit.
    BadRequest(String),
    /// The engine failed on an admitted job (non-convergence, linalg).
    Engine(String),
    /// Server-side invariant violation or I/O failure.
    Internal(String),
    /// The server is not accepting work (shutdown in progress).
    Unavailable(String),
    /// The remote side reported an error (client view).
    Remote(String),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Engine(m) => write!(f, "engine error: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
            ServeError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}
