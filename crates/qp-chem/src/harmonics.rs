//! Real spherical harmonics.
//!
//! The multipole machinery of the response-potential phase expands densities
//! and potentials in real spherical harmonics up to `l = pmax ≤ 9` (§4.4 of
//! the paper — the Adams-Moulton loop iterates over exactly the `(p, m)`
//! pairs these functions index). We implement the standard orthonormal real
//! harmonics via associated-Legendre recursion.

/// Maximum angular momentum supported (paper: pmax ≤ 9; we leave headroom).
pub const LMAX_SUPPORTED: usize = 12;

/// Number of real harmonics with `l ≤ lmax`: `(lmax+1)²`.
pub fn num_harmonics(lmax: usize) -> usize {
    (lmax + 1) * (lmax + 1)
}

/// Flattened index of `(l, m)` with `-l ≤ m ≤ l`: `l² + l + m`.
///
/// This is the same `idx = p² + p + m` linearization the paper's §4.4
/// loop-collapse example uses.
#[inline]
pub fn lm_index(l: usize, m: i64) -> usize {
    debug_assert!(m.unsigned_abs() as usize <= l);
    (l * l) + (l as i64 + m) as usize
}

/// Inverse of [`lm_index`]: recover `(l, m)` from the flattened index —
/// `l = isqrt(idx)`, `m = idx - l² - l` (the collapsed-loop body of §4.4).
#[inline]
pub fn lm_from_index(idx: usize) -> (usize, i64) {
    let l = idx.isqrt();
    let m = idx as i64 - (l * l) as i64 - l as i64;
    (l, m)
}

/// Evaluate all associated Legendre polynomials `P_l^m(x)` for
/// `0 ≤ m ≤ l ≤ lmax` into `plm[l*(l+1)/2 + m]`, including the
/// Condon–Shortley phase.
fn assoc_legendre_all(lmax: usize, x: f64, plm: &mut [f64]) {
    let idx = |l: usize, m: usize| l * (l + 1) / 2 + m;
    let somx2 = ((1.0 - x) * (1.0 + x)).max(0.0).sqrt();
    plm[idx(0, 0)] = 1.0;
    // Diagonal recursion: P_m^m = -(2m-1) sqrt(1-x^2) P_{m-1}^{m-1}.
    for m in 1..=lmax {
        plm[idx(m, m)] = -((2 * m - 1) as f64) * somx2 * plm[idx(m - 1, m - 1)];
    }
    // First off-diagonal: P_{m+1}^m = (2m+1) x P_m^m.
    for m in 0..lmax {
        plm[idx(m + 1, m)] = (2 * m + 1) as f64 * x * plm[idx(m, m)];
    }
    // Upward recursion in l.
    for m in 0..=lmax {
        for l in (m + 2)..=lmax {
            plm[idx(l, m)] = (((2 * l - 1) as f64) * x * plm[idx(l - 1, m)]
                - ((l + m - 1) as f64) * plm[idx(l - 2, m)])
                / ((l - m) as f64);
        }
    }
}

/// Evaluate all real spherical harmonics `Y_lm` with `l ≤ lmax` at the unit
/// direction `(x, y, z)` (not necessarily normalized; it is normalized
/// internally). Output is indexed by [`lm_index`]; length `(lmax+1)²`.
///
/// Normalization: `∫ Y_lm Y_l'm' dΩ = δ δ`.
pub fn real_spherical_harmonics(lmax: usize, dir: [f64; 3], out: &mut [f64]) {
    assert!(lmax <= LMAX_SUPPORTED);
    assert!(out.len() >= num_harmonics(lmax));
    let r = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
    let (x, y, z) = if r > 0.0 {
        (dir[0] / r, dir[1] / r, dir[2] / r)
    } else {
        (0.0, 0.0, 1.0)
    };
    let cos_theta = z;

    let mut plm = vec![0.0; (lmax + 1) * (lmax + 2) / 2];
    assoc_legendre_all(lmax, cos_theta, &mut plm);
    let pidx = |l: usize, m: usize| l * (l + 1) / 2 + m;

    // cos(m φ), sin(m φ) via the recurrence on (x, y) = (sinθ cosφ, sinθ sinφ):
    // c_m = sinθ^m cos(mφ), s_m = sinθ^m sin(mφ) are polynomial in (x, y),
    // but we need plain cos(mφ)/sin(mφ); compute φ from atan2 — clearer and
    // these evaluations are not on the hot path of the kernels (those use
    // tabulated values).
    let phi = y.atan2(x);

    let fourpi = 4.0 * std::f64::consts::PI;
    for l in 0..=lmax {
        // m = 0.
        let n0 = ((2 * l + 1) as f64 / fourpi).sqrt();
        out[lm_index(l, 0)] = n0 * plm[pidx(l, 0)];
        // m > 0.
        let mut fact_ratio = 1.0; // (l-m)!/(l+m)!
        let mut cs_sign = 1.0; // (-1)^m cancels the Condon-Shortley phase
        for m in 1..=l {
            fact_ratio /= ((l + m) * (l - m + 1)) as f64;
            cs_sign = -cs_sign;
            let nm = cs_sign
                * ((2 * l + 1) as f64 / fourpi * fact_ratio).sqrt()
                * std::f64::consts::SQRT_2;
            let p = plm[pidx(l, m)];
            let mm = m as f64;
            out[lm_index(l, m as i64)] = nm * p * (mm * phi).cos();
            out[lm_index(l, -(m as i64))] = nm * p * (mm * phi).sin();
        }
    }
}

/// Convenience: allocate and return the harmonics vector.
pub fn ylm_vec(lmax: usize, dir: [f64; 3]) -> Vec<f64> {
    let mut out = vec![0.0; num_harmonics(lmax)];
    real_spherical_harmonics(lmax, dir, &mut out);
    out
}

/// Normalization constants of the real harmonics, indexed `l*(l+1)/2 + m`
/// for `0 ≤ m ≤ l ≤ LMAX_SUPPORTED` — the exact per-call constants of
/// [`real_spherical_harmonics`], tabulated once.
fn norm_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static NORMS: OnceLock<Vec<f64>> = OnceLock::new();
    NORMS.get_or_init(|| {
        let lmax = LMAX_SUPPORTED;
        let pidx = |l: usize, m: usize| l * (l + 1) / 2 + m;
        let fourpi = 4.0 * std::f64::consts::PI;
        let mut t = vec![0.0; (lmax + 1) * (lmax + 2) / 2];
        for l in 0..=lmax {
            t[pidx(l, 0)] = ((2 * l + 1) as f64 / fourpi).sqrt();
            let mut fact_ratio = 1.0;
            let mut cs_sign = 1.0;
            for m in 1..=l {
                fact_ratio /= ((l + m) * (l - m + 1)) as f64;
                cs_sign = -cs_sign;
                t[pidx(l, m)] = cs_sign
                    * ((2 * l + 1) as f64 / fourpi * fact_ratio).sqrt()
                    * std::f64::consts::SQRT_2;
            }
        }
        t
    })
}

/// Fast variant of [`real_spherical_harmonics`] for the hierarchical
/// far-field hot loop: tabulated normalizations, stack-allocated Legendre
/// workspace, and `cos(mφ)/sin(mφ)` by the complex rotation recurrence
/// instead of 2·lmax·(lmax+1)/2 libm trig calls.
///
/// NOT bit-identical to the reference evaluator (the azimuthal recurrence
/// rounds differently in the last ulp) — callers on a bit-identity contract
/// (the direct Hartree path, grid tabulation) must keep using
/// [`real_spherical_harmonics`]. Agreement is at the 1e-14 level, far
/// inside the far-field accuracy budget; a test pins this.
pub fn real_spherical_harmonics_fast(lmax: usize, dir: [f64; 3], out: &mut [f64]) {
    assert!(lmax <= LMAX_SUPPORTED);
    assert!(out.len() >= num_harmonics(lmax));
    let r = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
    let (x, y, z) = if r > 0.0 {
        (dir[0] / r, dir[1] / r, dir[2] / r)
    } else {
        (0.0, 0.0, 1.0)
    };
    let mut plm = [0.0f64; (LMAX_SUPPORTED + 1) * (LMAX_SUPPORTED + 2) / 2];
    assoc_legendre_all(lmax, z, &mut plm);
    let pidx = |l: usize, m: usize| l * (l + 1) / 2 + m;
    let norms = norm_table();

    let rho = (x * x + y * y).sqrt();
    let (cphi, sphi) = if rho > 0.0 {
        (x / rho, y / rho)
    } else {
        (1.0, 0.0)
    };
    for l in 0..=lmax {
        out[lm_index(l, 0)] = norms[pidx(l, 0)] * plm[pidx(l, 0)];
    }
    let (mut cm, mut sm) = (1.0f64, 0.0f64); // cos(mφ), sin(mφ)
    for m in 1..=lmax {
        let (c, s) = (cm * cphi - sm * sphi, sm * cphi + cm * sphi);
        cm = c;
        sm = s;
        for l in m..=lmax {
            let np = norms[pidx(l, m)] * plm[pidx(l, m)];
            out[lm_index(l, m as i64)] = np * cm;
            out[lm_index(l, -(m as i64))] = np * sm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_index_round_trip() {
        for l in 0..=9usize {
            for m in -(l as i64)..=(l as i64) {
                let idx = lm_index(l, m);
                assert_eq!(lm_from_index(idx), (l, m));
            }
        }
        assert_eq!(num_harmonics(9), 100);
    }

    #[test]
    fn y00_is_constant() {
        let v = ylm_vec(0, [0.3, -0.2, 0.9]);
        let expect = 0.5 / std::f64::consts::PI.sqrt();
        assert!((v[0] - expect).abs() < 1e-14);
    }

    #[test]
    fn y1m_matches_cartesian_forms() {
        // Y_1,-1 = sqrt(3/4π) y; Y_1,0 = sqrt(3/4π) z; Y_1,1 = sqrt(3/4π) x.
        let dir = [0.48, -0.6, 0.64];
        let c = (3.0 / (4.0 * std::f64::consts::PI)).sqrt();
        let v = ylm_vec(1, dir);
        assert!((v[lm_index(1, -1)] - c * dir[1]).abs() < 1e-12);
        assert!((v[lm_index(1, 0)] - c * dir[2]).abs() < 1e-12);
        assert!((v[lm_index(1, 1)] - c * dir[0]).abs() < 1e-12);
    }

    #[test]
    fn y2m_known_value_on_axis() {
        // On the z axis, only m = 0 harmonics are nonzero and
        // Y_l0(z=1) = sqrt((2l+1)/4π).
        let v = ylm_vec(4, [0.0, 0.0, 1.0]);
        for l in 0..=4usize {
            let expect = ((2 * l + 1) as f64 / (4.0 * std::f64::consts::PI)).sqrt();
            assert!((v[lm_index(l, 0)] - expect).abs() < 1e-12, "l = {l}");
            for m in 1..=(l as i64) {
                assert!(v[lm_index(l, m)].abs() < 1e-12);
                assert!(v[lm_index(l, -m)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn orthonormality_via_dense_quadrature() {
        // Gauss-free check: uniform theta-phi product grid converges slowly
        // but 200x400 is plenty for l <= 4 at 1e-6.
        let lmax = 4;
        let nh = num_harmonics(lmax);
        let ntheta = 200;
        let nphi = 400;
        let mut gram = vec![0.0; nh * nh];
        let mut buf = vec![0.0; nh];
        for it in 0..ntheta {
            let theta = (it as f64 + 0.5) / ntheta as f64 * std::f64::consts::PI;
            let wt =
                theta.sin() * std::f64::consts::PI / ntheta as f64 * 2.0 * std::f64::consts::PI
                    / nphi as f64;
            for ip in 0..nphi {
                let phi = ip as f64 / nphi as f64 * 2.0 * std::f64::consts::PI;
                let dir = [
                    theta.sin() * phi.cos(),
                    theta.sin() * phi.sin(),
                    theta.cos(),
                ];
                real_spherical_harmonics(lmax, dir, &mut buf);
                for a in 0..nh {
                    for b in a..nh {
                        gram[a * nh + b] += wt * buf[a] * buf[b];
                    }
                }
            }
        }
        for a in 0..nh {
            for b in a..nh {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (gram[a * nh + b] - expect).abs() < 1e-4,
                    "gram[{a},{b}] = {}",
                    gram[a * nh + b]
                );
            }
        }
    }

    #[test]
    fn zero_direction_does_not_panic() {
        let v = ylm_vec(2, [0.0, 0.0, 0.0]);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
