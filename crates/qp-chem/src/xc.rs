//! LDA exchange-correlation (Perdew–Zunger 1981 parameterization of the
//! Ceperley–Alder electron gas).
//!
//! The paper's calculations "use light settings and the LDA functional"
//! (§5.1). The DFPT phase needs not only `v_xc[n]` but the kernel
//! `f_xc = ∂v_xc/∂n` (Eq. 12:
//! `v¹_xc = (∂v_xc/∂n) n¹(r)`), so all three derivatives of the
//! exchange-correlation energy density are implemented analytically.

/// Exchange energy per particle `ε_x(n)` (Hartree).
pub fn epsilon_x(n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let cx = -0.75 * (3.0 / std::f64::consts::PI).cbrt();
    cx * n.cbrt()
}

/// Exchange potential `v_x = d(n ε_x)/dn = (4/3) ε_x`.
pub fn v_x(n: f64) -> f64 {
    4.0 / 3.0 * epsilon_x(n)
}

/// Exchange kernel `f_x = dv_x/dn = (4/9) ε_x / n`.
pub fn f_x(n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    4.0 / 9.0 * epsilon_x(n) / n
}

/// Wigner–Seitz radius `r_s = (3/(4π n))^(1/3)`.
pub fn rs_of_n(n: f64) -> f64 {
    (3.0 / (4.0 * std::f64::consts::PI * n)).cbrt()
}

// PZ81 constants (unpolarized).
const A: f64 = 0.0311;
const B: f64 = -0.048;
const C: f64 = 0.0020;
const D: f64 = -0.0116;
const GAMMA: f64 = -0.1423;
const BETA1: f64 = 1.0529;
const BETA2: f64 = 0.3334;

/// Correlation energy per particle `ε_c(r_s)` and its first two `r_s`
/// derivatives.
fn ec_and_derivs(rs: f64) -> (f64, f64, f64) {
    if rs < 1.0 {
        let ln = rs.ln();
        let ec = A * ln + B + C * rs * ln + D * rs;
        let d1 = A / rs + C * (ln + 1.0) + D;
        let d2 = -A / (rs * rs) + C / rs;
        (ec, d1, d2)
    } else {
        let sq = rs.sqrt();
        let den = 1.0 + BETA1 * sq + BETA2 * rs;
        let ec = GAMMA / den;
        let dden = 0.5 * BETA1 / sq + BETA2;
        let d2den = -0.25 * BETA1 / (sq * rs);
        let d1 = -GAMMA * dden / (den * den);
        let d2 = GAMMA * (2.0 * dden * dden / den.powi(3) - d2den / (den * den));
        (ec, d1, d2)
    }
}

/// Correlation energy per particle.
pub fn epsilon_c(n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    ec_and_derivs(rs_of_n(n)).0
}

/// Correlation potential `v_c = ε_c − (r_s/3) dε_c/dr_s`.
pub fn v_c(n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let rs = rs_of_n(n);
    let (ec, d1, _) = ec_and_derivs(rs);
    ec - rs / 3.0 * d1
}

/// Correlation kernel `f_c = dv_c/dn`.
///
/// With `dr_s/dn = −r_s/(3n)`:
/// `dv_c/dr_s = (2/3) ε_c' − (r_s/3) ε_c''`, so
/// `f_c = −(r_s/(3n)) [(2/3) ε_c' − (r_s/3) ε_c'']`.
pub fn f_c(n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let rs = rs_of_n(n);
    let (_, d1, d2) = ec_and_derivs(rs);
    let dvc_drs = 2.0 / 3.0 * d1 - rs / 3.0 * d2;
    -(rs / (3.0 * n)) * dvc_drs
}

/// Total exchange-correlation energy per particle.
pub fn epsilon_xc(n: f64) -> f64 {
    epsilon_x(n) + epsilon_c(n)
}

/// Total exchange-correlation potential `v_xc`.
pub fn v_xc(n: f64) -> f64 {
    v_x(n) + v_c(n)
}

/// Total kernel `f_xc = ∂v_xc/∂n` — the factor multiplying `n¹(r)` in Eq. 12.
pub fn f_xc(n: f64) -> f64 {
    f_x(n) + f_c(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = x * 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn vx_is_derivative_of_exchange_energy_density() {
        for &n in &[1e-4, 0.01, 0.3, 2.0, 50.0] {
            let analytic = v_x(n);
            let numeric = fd(|m| m * epsilon_x(m), n);
            assert!((analytic - numeric).abs() < 1e-6 * analytic.abs().max(1e-8));
        }
    }

    #[test]
    fn vc_is_derivative_of_correlation_energy_density() {
        // Both branches of PZ81: rs < 1 (high density) and rs > 1.
        for &n in &[1e-4, 0.002, 0.05, 0.239, 0.3, 5.0] {
            let analytic = v_c(n);
            let numeric = fd(|m| m * epsilon_c(m), n);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "n = {n}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn fx_is_derivative_of_vx() {
        for &n in &[0.01, 0.3, 2.0] {
            let analytic = f_x(n);
            let numeric = fd(v_x, n);
            assert!((analytic - numeric).abs() < 1e-6 * analytic.abs());
        }
    }

    #[test]
    fn fc_is_derivative_of_vc() {
        for &n in &[1e-3, 0.01, 0.239, 0.5, 5.0] {
            let analytic = f_c(n);
            let numeric = fd(v_c, n);
            assert!(
                (analytic - numeric).abs() < 1e-5 * analytic.abs().max(1e-6),
                "n = {n}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn known_uniform_gas_value() {
        // At rs = 1 (n = 3/4π): εx = -0.75 (3/π)^(1/3) * (3/4π)^(1/3)
        //                           = -(3/4)(9/(4π²))^(1/3) ≈ -0.45817 Ha.
        let n = 3.0 / (4.0 * std::f64::consts::PI);
        assert!((rs_of_n(n) - 1.0).abs() < 1e-12);
        assert!((epsilon_x(n) + 0.45817).abs() < 1e-4);
        // PZ81 correlation at rs = 1 from the low-density branch:
        // γ/(1+β1+β2) = -0.1423/2.3863 ≈ -0.05963.
        assert!((epsilon_c(n) + 0.05963).abs() < 1e-4);
    }

    #[test]
    fn zero_density_is_safe() {
        assert_eq!(epsilon_xc(0.0), 0.0);
        assert_eq!(v_xc(0.0), 0.0);
        assert_eq!(f_xc(0.0), 0.0);
        assert_eq!(v_xc(-1e-10), 0.0);
    }

    #[test]
    fn branch_continuity_at_rs_one() {
        // PZ81 is constructed continuous at rs = 1 (value; small kinks in
        // derivatives are a known property of the parameterization).
        // PZ81's two branches differ by ~3e-5 Ha at the seam — a documented
        // property of the parameterization, not a bug.
        let n1 = 3.0 / (4.0 * std::f64::consts::PI) * 1.000001;
        let n2 = 3.0 / (4.0 * std::f64::consts::PI) * 0.999999;
        assert!((epsilon_c(n1) - epsilon_c(n2)).abs() < 1e-4);
    }

    #[test]
    fn potentials_negative_for_physical_densities() {
        for &n in &[1e-3, 0.1, 1.0, 10.0] {
            assert!(v_xc(n) < 0.0);
            assert!(epsilon_xc(n) < 0.0);
        }
    }
}
