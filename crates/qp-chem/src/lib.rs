//! # qp-chem
//!
//! Quantum-chemistry substrate for the `qperturb` workspace — everything the
//! SC '23 paper's DFPT code inherits from FHI-aims and that has no Rust
//! ecosystem equivalent, built from scratch:
//!
//! * [`elements`] — chemical elements, nuclear charges, covalent radii and
//!   per-element numeric-atomic-orbital (NAO) basis definitions at two
//!   accuracy settings ("light" and "tier2", mirroring the paper's
//!   1 359-basis vs 2 143-basis HIV-ligand runs).
//! * [`geometry`] — atoms, molecular structures, neighbour search.
//! * [`structures`] — deterministic generators for the paper's three
//!   biomolecular workloads: H(C₂H₄)ₙH polyethylene chains, a 49-atom
//!   HIV-1-protease-ligand-like molecule, and an RBD-like pseudo-protein.
//! * [`spline`] — cubic splines; the objects counted in Fig. 9(c).
//! * [`radial`] — logarithmic radial grids for all-electron atoms.
//! * [`angular`] — Lebedev-style angular quadrature grids.
//! * [`harmonics`] — real spherical harmonics up to `l = 9`
//!   (`pmax ≤ 9` in §4.4 of the paper).
//! * [`basis`] — the NAO basis set: splined radial parts × spherical
//!   harmonics, with finite support (cutoff radii) — the origin of
//!   Hamiltonian sparsity.
//! * [`xc`] — LDA exchange-correlation (Perdew-Zunger '81): `εxc`, `vxc`,
//!   and the kernel `fxc = ∂vxc/∂n` needed by Eq. 12.
//! * [`grids`] — atom-centered integration grids with Becke partition
//!   weights; the non-uniform grid points of Fig. 2.
//! * [`multipole`] — multipole expansion of densities and the radial Poisson
//!   solver (Adams–Moulton multistep integration, §4.4) producing the
//!   `rho_multipole_spl` / `delta_v_hart_part_spl` tables of §4.2.

// `for d in 0..3` indexing several parallel arrays at once is the clearest
// form for Cartesian components; the iterator rewrite obscures it.
#![allow(clippy::needless_range_loop)]

pub mod angular;
pub mod basis;
pub mod elements;
pub mod geometry;
pub mod grids;
pub mod harmonics;
pub mod io;
pub mod multipole;
pub mod radial;
pub mod spline;
pub mod structures;
pub mod xc;

pub use basis::{BasisFunction, BasisSet, BasisSettings};
pub use elements::Element;
pub use geometry::{Atom, Structure};
pub use spline::CubicSpline;
