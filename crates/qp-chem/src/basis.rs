//! Numeric atomic orbital (NAO) basis sets.
//!
//! FHI-aims represents each basis function as a numerically tabulated radial
//! part times a real spherical harmonic, confined to a finite cutoff radius —
//! which is what makes the global Hamiltonian sparse (§3.1.1: "atoms can only
//! have interactions with [their] neighbor atoms"). We reproduce that shape:
//! Slater-type radial functions with a smooth confinement factor, tabulated
//! on a logarithmic grid and evaluated through cubic splines.

use crate::elements::{Element, Shell};
use crate::geometry::Structure;
use crate::harmonics::{lm_index, ylm_vec};
use crate::radial::RadialGrid;
use crate::spline::CubicSpline;
use std::collections::HashMap;
use std::sync::Arc;

/// Basis accuracy settings, mirroring the paper's two HIV-ligand runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisSettings {
    /// Occupied atomic shells only (FHI-aims "light"-like).
    Light,
    /// Light plus one polarization shell per element ("tier2"-like).
    Tier2,
}

/// A tabulated radial function `R(r)` for one shell of one element.
#[derive(Debug)]
pub struct RadialFunction {
    /// Owning element.
    pub element: Element,
    /// Shell quantum numbers.
    pub shell: Shell,
    /// Spline of `R(r)` on the logarithmic grid, normalized so
    /// `∫ R² r² dr = 1`.
    pub spline: CubicSpline,
    /// Hard cutoff radius (Bohr); `R(r ≥ cutoff) = 0`.
    pub cutoff: f64,
}

impl RadialFunction {
    /// Tabulate the shell's confined Slater radial function.
    pub fn build(element: Element, shell: Shell) -> Self {
        let cutoff = element.cutoff_radius();
        let grid = RadialGrid::logarithmic(1e-5, cutoff, 240);
        let raw = |r: f64| -> f64 {
            if r >= cutoff {
                return 0.0;
            }
            // Smooth confinement: C² at the cutoff.
            let fc = {
                let x = r / cutoff;
                (1.0 - x * x).powi(2)
            };
            r.powi(shell.n as i32 - 1) * (-shell.zeta * r).exp() * fc
        };
        // Normalize numerically on the same grid.
        let norm2 = grid.integrate(|r| raw(r) * raw(r));
        let n = 1.0 / norm2.sqrt();
        let values: Vec<f64> = grid.radii().iter().map(|&r| n * raw(r)).collect();
        let spline = CubicSpline::natural(grid.radii().to_vec(), values);
        RadialFunction {
            element,
            shell,
            spline,
            cutoff,
        }
    }

    /// Evaluate `R(r)`, zero beyond the cutoff.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        if r >= self.cutoff {
            0.0
        } else {
            self.spline.eval(r.max(1e-5))
        }
    }
}

/// One basis function: a radial function on a specific atom with a specific
/// angular momentum component.
#[derive(Debug, Clone)]
pub struct BasisFunction {
    /// Global atom index the function is centered on.
    pub atom: usize,
    /// Center coordinates (Bohr).
    pub center: [f64; 3],
    /// The shared radial table.
    pub radial: Arc<RadialFunction>,
    /// Angular momentum `l`.
    pub l: usize,
    /// Angular momentum projection `m` (real harmonics, `-l ≤ m ≤ l`).
    pub m: i64,
}

impl BasisFunction {
    /// Evaluate `χ(p) = R(|p - center|) · Y_lm(p - center)`.
    pub fn eval(&self, p: [f64; 3]) -> f64 {
        let d = [
            p[0] - self.center[0],
            p[1] - self.center[1],
            p[2] - self.center[2],
        ];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        if r >= self.radial.cutoff {
            return 0.0;
        }
        let rad = self.radial.eval(r);
        if rad == 0.0 {
            return 0.0;
        }
        let y = ylm_vec(self.l, d);
        rad * y[lm_index(self.l, self.m)]
    }

    /// Numerical gradient of `χ` at `p` (central differences).
    ///
    /// Used by the kinetic-energy matrix via
    /// `T_μν = ½ ∫ ∇χ_μ · ∇χ_ν` (integration by parts is exact for finitely
    /// supported functions).
    pub fn eval_grad(&self, p: [f64; 3]) -> [f64; 3] {
        const H: f64 = 1e-5;
        let mut g = [0.0; 3];
        for d in 0..3 {
            let mut pp = p;
            let mut pm = p;
            pp[d] += H;
            pm[d] -= H;
            g[d] = (self.eval(pp) - self.eval(pm)) / (2.0 * H);
        }
        g
    }
}

/// The full basis set of a structure.
#[derive(Debug)]
pub struct BasisSet {
    /// All basis functions, grouped by atom (atom-major order — the paper's
    /// basis indexing, which makes the per-process dense block contiguous).
    pub functions: Vec<BasisFunction>,
    /// First function index of each atom; `atom_offsets[natoms] = len()`.
    pub atom_offsets: Vec<usize>,
    settings: BasisSettings,
}

impl BasisSet {
    /// Build the basis for a structure at the given settings. Radial tables
    /// are shared per `(element, shell)`.
    pub fn build(structure: &Structure, settings: BasisSettings) -> Self {
        let mut radial_cache: HashMap<(Element, usize), Arc<RadialFunction>> = HashMap::new();
        let mut functions = Vec::new();
        let mut atom_offsets = Vec::with_capacity(structure.len() + 1);
        for (ia, atom) in structure.atoms.iter().enumerate() {
            atom_offsets.push(functions.len());
            let shells = match settings {
                BasisSettings::Light => atom.element.shells_light(),
                BasisSettings::Tier2 => atom.element.shells_tier2(),
            };
            for (si, shell) in shells.iter().enumerate() {
                let radial = radial_cache
                    .entry((atom.element, si))
                    .or_insert_with(|| Arc::new(RadialFunction::build(atom.element, *shell)))
                    .clone();
                let l = shell.l as usize;
                for m in -(l as i64)..=(l as i64) {
                    functions.push(BasisFunction {
                        atom: ia,
                        center: atom.position,
                        radial: radial.clone(),
                        l,
                        m,
                    });
                }
            }
        }
        atom_offsets.push(functions.len());
        BasisSet {
            functions,
            atom_offsets,
            settings,
        }
    }

    /// Total number of basis functions (`N_b` of §3.1.1).
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when there are no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The settings the basis was built with.
    pub fn settings(&self) -> BasisSettings {
        self.settings
    }

    /// The range of function indices centered on `atom`.
    pub fn functions_of_atom(&self, atom: usize) -> std::ops::Range<usize> {
        self.atom_offsets[atom]..self.atom_offsets[atom + 1]
    }

    /// The atom a function is centered on.
    pub fn atom_of(&self, ifn: usize) -> usize {
        self.functions[ifn].atom
    }

    /// Indices of functions whose support reaches within `extra` of point
    /// `p` — the batch-local basis pruning the integration kernels use.
    pub fn functions_near(&self, p: [f64; 3], extra: f64) -> Vec<usize> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let d = qp_linalg::vecops::dist3(p, f.center);
                d < f.radial.cutoff + extra
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{ligand49, water};

    #[test]
    fn water_light_has_11_functions() {
        // O: 5, H: 1 each -> 7? No: O(1s,2s,2p)=5, 2 H(1s)=2 -> 7.
        let w = water();
        let b = BasisSet::build(&w, BasisSettings::Light);
        assert_eq!(b.len(), 7);
        assert_eq!(b.functions_of_atom(0), 0..5);
        assert_eq!(b.functions_of_atom(1), 5..6);
    }

    #[test]
    fn tier2_is_larger_than_light() {
        let l = ligand49();
        let light = BasisSet::build(&l, BasisSettings::Light);
        let tier2 = BasisSet::build(&l, BasisSettings::Tier2);
        assert!(tier2.len() > light.len());
        // Paper ratio for the ligand is 2143/1359 ~ 1.58; ours should be in
        // the same ballpark (each heavy atom gains a d shell).
        let ratio = tier2.len() as f64 / light.len() as f64;
        assert!(ratio > 1.3 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn radial_function_normalized() {
        let rf = RadialFunction::build(Element::O, Element::O.shells_light()[0]);
        let grid = RadialGrid::logarithmic(1e-5, rf.cutoff, 400);
        let n = grid.integrate(|r| rf.eval(r) * rf.eval(r));
        assert!((n - 1.0).abs() < 1e-3, "norm² = {n}");
    }

    #[test]
    fn basis_function_vanishes_beyond_cutoff() {
        let w = water();
        let b = BasisSet::build(&w, BasisSettings::Light);
        let f = &b.functions[0];
        let far = [f.radial.cutoff + 1.0, 0.0, 0.0];
        assert_eq!(f.eval(far), 0.0);
    }

    #[test]
    fn s_function_spherically_symmetric() {
        let w = water();
        let b = BasisSet::build(&w, BasisSettings::Light);
        let f = &b.functions[0]; // O 1s
        assert_eq!(f.l, 0);
        let r = 1.3;
        let v1 = f.eval([f.center[0] + r, f.center[1], f.center[2]]);
        let v2 = f.eval([f.center[0], f.center[1] + r, f.center[2]]);
        let v3 = f.eval([
            f.center[0] + r / 3.0f64.sqrt(),
            f.center[1] + r / 3.0f64.sqrt(),
            f.center[2] + r / 3.0f64.sqrt(),
        ]);
        assert!((v1 - v2).abs() < 1e-10);
        assert!((v1 - v3).abs() < 1e-8);
    }

    #[test]
    fn p_function_changes_sign() {
        let w = water();
        let b = BasisSet::build(&w, BasisSettings::Light);
        // Find a p function on O (l = 1, m = 0 -> z-like).
        let f = b
            .functions
            .iter()
            .find(|f| f.l == 1 && f.m == 0)
            .expect("O has 2p");
        let up = f.eval([f.center[0], f.center[1], f.center[2] + 1.0]);
        let dn = f.eval([f.center[0], f.center[1], f.center[2] - 1.0]);
        assert!((up + dn).abs() < 1e-10, "odd parity violated: {up} vs {dn}");
        assert!(up.abs() > 1e-4);
    }

    #[test]
    fn gradient_matches_directional_fd() {
        let w = water();
        let b = BasisSet::build(&w, BasisSettings::Light);
        let f = &b.functions[2]; // some O function
        let p = [0.7, 0.4, -0.2];
        let g = f.eval_grad(p);
        let h = 1e-5;
        for d in 0..3 {
            let mut pp = p;
            pp[d] += h;
            let mut pm = p;
            pm[d] -= h;
            let fd = (f.eval(pp) - f.eval(pm)) / (2.0 * h);
            assert!((g[d] - fd).abs() < 1e-8);
        }
    }

    #[test]
    fn functions_near_prunes_far_points() {
        let p = crate::structures::polyethylene(20);
        let b = BasisSet::build(&p, BasisSettings::Light);
        let (lo, _) = p.bounding_box();
        // A point near the chain start should not see the chain end.
        let near_start = b.functions_near([lo[0], lo[1], lo[2]], 0.0);
        assert!(!near_start.is_empty());
        assert!(near_start.len() < b.len());
    }

    #[test]
    fn radial_tables_are_shared() {
        let p = crate::structures::polyethylene(10);
        let b = BasisSet::build(&p, BasisSettings::Light);
        // All carbon 1s radial tables should be the same Arc.
        let c1s: Vec<&BasisFunction> = b
            .functions
            .iter()
            .filter(|f| f.radial.element == Element::C && f.radial.shell.n == 1)
            .collect();
        assert!(c1s.len() > 1);
        let first = Arc::as_ptr(&c1s[0].radial);
        assert!(c1s.iter().all(|f| Arc::as_ptr(&f.radial) == first));
    }
}
