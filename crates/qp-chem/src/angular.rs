//! Lebedev-style angular quadrature grids.
//!
//! The paper's grids follow Lebedev (refs [21, 22]): each radial shell of an
//! atom carries a spherical point set whose order grows with radius. We
//! implement the five smallest octahedrally-symmetric Lebedev rules (6, 14,
//! 26, 38 and 50 points), exact for spherical polynomials of degree 3, 5, 7,
//! 9 and 11 respectively — enough for the `pmax ≤ 9` multipole machinery.
//!
//! Weights are normalized so `Σ wᵢ = 1`; a surface integral is
//! `∫ f dΩ ≈ 4π Σ wᵢ f(nᵢ)`.

/// One angular quadrature point: unit direction and normalized weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularPoint {
    /// Unit direction.
    pub dir: [f64; 3],
    /// Weight, with `Σ w = 1` over the grid.
    pub weight: f64,
}

/// An angular (Lebedev) grid.
#[derive(Debug, Clone)]
pub struct AngularGrid {
    points: Vec<AngularPoint>,
    degree: usize,
}

/// Available grid sizes.
pub const AVAILABLE_ORDERS: [usize; 5] = [6, 14, 26, 38, 50];

fn push_octahedron(points: &mut Vec<AngularPoint>, w: f64) {
    for d in 0..3 {
        for s in [1.0, -1.0] {
            let mut dir = [0.0; 3];
            dir[d] = s;
            points.push(AngularPoint { dir, weight: w });
        }
    }
}

fn push_cube_corners(points: &mut Vec<AngularPoint>, w: f64) {
    let a = 1.0 / 3.0f64.sqrt();
    for sx in [1.0, -1.0] {
        for sy in [1.0, -1.0] {
            for sz in [1.0, -1.0] {
                points.push(AngularPoint {
                    dir: [sx * a, sy * a, sz * a],
                    weight: w,
                });
            }
        }
    }
}

fn push_edge_midpoints(points: &mut Vec<AngularPoint>, w: f64) {
    let a = 1.0 / 2.0f64.sqrt();
    // 12 points of the form (±a, ±a, 0) and permutations.
    let axes = [(0usize, 1usize), (0, 2), (1, 2)];
    for &(i, j) in &axes {
        for si in [1.0, -1.0] {
            for sj in [1.0, -1.0] {
                let mut dir = [0.0; 3];
                dir[i] = si * a;
                dir[j] = sj * a;
                points.push(AngularPoint { dir, weight: w });
            }
        }
    }
}

/// 24 points of the form (±p, ±q, 0) and all permutations (p ≠ q).
fn push_pq0(points: &mut Vec<AngularPoint>, p: f64, q: f64, w: f64) {
    let perms = [(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    for &(i, j) in &perms {
        for si in [1.0, -1.0] {
            for sj in [1.0, -1.0] {
                let mut dir = [0.0; 3];
                dir[i] = si * p;
                dir[j] = sj * q;
                points.push(AngularPoint { dir, weight: w });
            }
        }
    }
}

/// 24 points of the form (±l, ±l, ±m) and permutations (2 equal coords).
fn push_llm(points: &mut Vec<AngularPoint>, l: f64, m: f64, w: f64) {
    // The distinct position of the m coordinate: 3 choices, signs: 8.
    for mpos in 0..3usize {
        for s0 in [1.0, -1.0] {
            for s1 in [1.0, -1.0] {
                for s2 in [1.0, -1.0] {
                    let signs = [s0, s1, s2];
                    let mut dir = [0.0; 3];
                    for d in 0..3 {
                        dir[d] = if d == mpos {
                            signs[d] * m
                        } else {
                            signs[d] * l
                        };
                    }
                    points.push(AngularPoint { dir, weight: w });
                }
            }
        }
    }
}

impl AngularGrid {
    /// Build the Lebedev rule with exactly `order` points
    /// (order ∈ {6, 14, 26, 38, 50}).
    pub fn lebedev(order: usize) -> Self {
        let mut points = Vec::with_capacity(order);
        let degree = match order {
            6 => {
                push_octahedron(&mut points, 1.0 / 6.0);
                3
            }
            14 => {
                push_octahedron(&mut points, 1.0 / 15.0);
                push_cube_corners(&mut points, 3.0 / 40.0);
                5
            }
            26 => {
                push_octahedron(&mut points, 1.0 / 21.0);
                push_edge_midpoints(&mut points, 4.0 / 105.0);
                push_cube_corners(&mut points, 9.0 / 280.0);
                7
            }
            38 => {
                push_octahedron(&mut points, 1.0 / 105.0);
                push_cube_corners(&mut points, 9.0 / 280.0);
                let p = 0.888_073_833_977_115_3;
                let q = 0.459_700_843_380_983_1;
                push_pq0(&mut points, p, q, 1.0 / 35.0);
                9
            }
            50 => {
                push_octahedron(&mut points, 4.0 / 315.0);
                push_edge_midpoints(&mut points, 64.0 / 2835.0);
                push_cube_corners(&mut points, 27.0 / 1280.0);
                let l = 1.0 / 11.0f64.sqrt();
                let m = 3.0 / 11.0f64.sqrt();
                push_llm(&mut points, l, m, 14641.0 / 725760.0);
                11
            }
            _ => panic!("unsupported Lebedev order {order}; available: {AVAILABLE_ORDERS:?}"),
        };
        debug_assert_eq!(points.len(), order);
        AngularGrid { points, degree }
    }

    /// Smallest available rule exact to the given polynomial degree.
    pub fn for_degree(degree: usize) -> Self {
        let order = match degree {
            0..=3 => 6,
            4..=5 => 14,
            6..=7 => 26,
            8..=9 => 38,
            _ => 50,
        };
        AngularGrid::lebedev(order)
    }

    /// Quadrature points.
    pub fn points(&self) -> &[AngularPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty (never for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Algebraic degree of exactness.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Integrate a function over the unit sphere: `4π Σ wᵢ f(nᵢ)`.
    pub fn integrate(&self, f: impl Fn([f64; 3]) -> f64) -> f64 {
        4.0 * std::f64::consts::PI * self.points.iter().map(|p| p.weight * f(p.dir)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonics::{lm_index, num_harmonics, ylm_vec};

    #[test]
    fn weights_sum_to_one_and_points_unit() {
        for order in AVAILABLE_ORDERS {
            let g = AngularGrid::lebedev(order);
            assert_eq!(g.len(), order);
            let ws: f64 = g.points().iter().map(|p| p.weight).sum();
            assert!((ws - 1.0).abs() < 1e-12, "order {order}: Σw = {ws}");
            for p in g.points() {
                let r = (p.dir[0].powi(2) + p.dir[1].powi(2) + p.dir[2].powi(2)).sqrt();
                assert!((r - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn integrates_constant_to_4pi() {
        for order in AVAILABLE_ORDERS {
            let g = AngularGrid::lebedev(order);
            assert!((g.integrate(|_| 1.0) - 4.0 * std::f64::consts::PI).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_for_low_harmonics() {
        // ∫ Y_lm dΩ = 0 for l > 0; ∫ Y_00 dΩ = sqrt(4π).
        for order in AVAILABLE_ORDERS {
            let g = AngularGrid::lebedev(order);
            let lmax = g.degree() / 2; // products integrate exactly to 2*lmax
            for l in 1..=lmax {
                for m in -(l as i64)..=(l as i64) {
                    let v = g.integrate(|d| ylm_vec(l, d)[lm_index(l, m)]);
                    assert!(v.abs() < 1e-10, "order {order}, Y_{l}{m}: {v}");
                }
            }
        }
    }

    #[test]
    fn harmonic_orthonormality_within_degree() {
        // ∫ Y_a Y_b dΩ = δ_ab exactly when l_a + l_b <= degree.
        let g = AngularGrid::lebedev(50);
        let lmax = 5; // 5 + 5 = 10 <= 11
        let nh = num_harmonics(lmax);
        for a in 0..nh {
            for b in a..nh {
                let v = g.integrate(|d| {
                    let y = ylm_vec(lmax, d);
                    y[a] * y[b]
                });
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-9, "({a},{b}): {v}");
            }
        }
    }

    #[test]
    fn degree_selection() {
        assert_eq!(AngularGrid::for_degree(3).len(), 6);
        assert_eq!(AngularGrid::for_degree(5).len(), 14);
        assert_eq!(AngularGrid::for_degree(9).len(), 38);
        assert_eq!(AngularGrid::for_degree(20).len(), 50);
    }

    #[test]
    #[should_panic(expected = "unsupported Lebedev order")]
    fn unsupported_order_panics() {
        let _ = AngularGrid::lebedev(7);
    }
}
