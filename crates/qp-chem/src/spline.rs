//! Cubic splines.
//!
//! These are the workhorse of the response-potential phase: the multipole
//! expansion of the response density (`rho_multipole_spl`) and the partitioned
//! Hartree potential (`delta_v_hart_part_spl`) are both stored as cubic-spline
//! coefficient tables (§4.2), and "number of cubic splines performed" is the
//! metric of Fig. 9(c).  A spline *construction* is the expensive step that the
//! locality-enhancing mapping lets neighbouring atoms share (Fig. 4).

use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of cubic-spline constructions — the quantity of Fig. 9(c).
static SPLINE_CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Read the global spline-construction counter.
pub fn spline_constructions() -> u64 {
    SPLINE_CONSTRUCTIONS.load(Ordering::Relaxed)
}

/// Reset the global spline-construction counter (benchmark harness use).
pub fn reset_spline_constructions() {
    SPLINE_CONSTRUCTIONS.store(0, Ordering::Relaxed);
}

/// A natural cubic spline through `(x_i, y_i)` with strictly increasing `x`.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Second derivatives at the knots.
    y2: Vec<f64>,
}

impl CubicSpline {
    /// Construct a natural cubic spline. Panics if fewer than 2 points or
    /// `x` not strictly increasing.
    pub fn natural(x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(x.len() >= 2, "need at least two knots");
        for w in x.windows(2) {
            assert!(w[1] > w[0], "x must be strictly increasing");
        }
        SPLINE_CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);

        let n = x.len();
        let mut y2 = vec![0.0; n];
        let mut u = vec![0.0; n];
        // Tridiagonal sweep (natural boundary conditions: y2[0] = y2[n-1] = 0).
        for i in 1..n - 1 {
            let sig = (x[i] - x[i - 1]) / (x[i + 1] - x[i - 1]);
            let p = sig * y2[i - 1] + 2.0;
            y2[i] = (sig - 1.0) / p;
            let d = (y[i + 1] - y[i]) / (x[i + 1] - x[i]) - (y[i] - y[i - 1]) / (x[i] - x[i - 1]);
            u[i] = (6.0 * d / (x[i + 1] - x[i - 1]) - sig * u[i - 1]) / p;
        }
        for i in (0..n - 1).rev() {
            y2[i] = y2[i] * y2[i + 1] + u[i];
        }
        CubicSpline { x, y, y2 }
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when there are no knots (never for a constructed spline).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.x
    }

    /// Evaluate at `t`. Outside the knot range the boundary polynomial is
    /// extrapolated (FHI-aims clamps radial splines the same way; callers
    /// that need hard cutoffs zero the value themselves).
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.x.len();
        // Binary search for the bracketing interval.
        let k = match self
            .x
            .binary_search_by(|v| v.partial_cmp(&t).expect("finite knot"))
        {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let h = self.x[k + 1] - self.x[k];
        let a = (self.x[k + 1] - t) / h;
        let b = (t - self.x[k]) / h;
        a * self.y[k]
            + b * self.y[k + 1]
            + ((a * a * a - a) * self.y2[k] + (b * b * b - b) * self.y2[k + 1]) * (h * h) / 6.0
    }

    /// Locate the bracketing interval `k` and barycentric weights `(a, b)`
    /// for `t` against a shared knot vector — the exact search and weight
    /// arithmetic of [`eval`](Self::eval), factored out so that a family of
    /// splines over the *same* knots (every radial channel of an atom) pays
    /// one binary search instead of one per spline. Feed the result to
    /// [`eval_at`](Self::eval_at); `eval_at(locate(knots, t)) == eval(t)`
    /// bit for bit.
    pub fn locate(knots: &[f64], t: f64) -> (usize, f64, f64) {
        let n = knots.len();
        let k = match knots.binary_search_by(|v| v.partial_cmp(&t).expect("finite knot")) {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let h = knots[k + 1] - knots[k];
        let a = (knots[k + 1] - t) / h;
        let b = (t - knots[k]) / h;
        (k, a, b)
    }

    /// Evaluate from a prepared `(k, a, b)` triple (see
    /// [`locate`](Self::locate)). The expression is identical to
    /// [`eval`](Self::eval)'s, so results match bit for bit as long as the
    /// triple was located against this spline's own knot vector.
    #[inline]
    pub fn eval_at(&self, k: usize, a: f64, b: f64) -> f64 {
        let h = self.x[k + 1] - self.x[k];
        a * self.y[k]
            + b * self.y[k + 1]
            + ((a * a * a - a) * self.y2[k] + (b * b * b - b) * self.y2[k + 1]) * (h * h) / 6.0
    }

    /// Evaluate the first derivative at `t`.
    pub fn eval_deriv(&self, t: f64) -> f64 {
        let n = self.x.len();
        let k = match self
            .x
            .binary_search_by(|v| v.partial_cmp(&t).expect("finite knot"))
        {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let h = self.x[k + 1] - self.x[k];
        let a = (self.x[k + 1] - t) / h;
        let b = (t - self.x[k]) / h;
        (self.y[k + 1] - self.y[k]) / h
            + ((3.0 * b * b - 1.0) * self.y2[k + 1] - (3.0 * a * a - 1.0) * self.y2[k]) * h / 6.0
    }

    /// Integral over the full knot range (exact for the piecewise cubic).
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for k in 0..self.x.len() - 1 {
            let h = self.x[k + 1] - self.x[k];
            acc += 0.5 * h * (self.y[k] + self.y[k + 1])
                - h * h * h / 24.0 * (self.y2[k] + self.y2[k + 1]);
        }
        acc
    }

    /// Heap footprint of the coefficient table in bytes (used for the
    /// Fig. 12(a) RMA-volume analysis).
    pub fn memory_bytes(&self) -> usize {
        (self.x.len() + self.y.len() + self.y2.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let y = vec![1.0, 2.0, 0.0, 5.0];
        let s = CubicSpline::natural(x.clone(), y.clone());
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert!((s.eval(*xi) - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn reproduces_linear_function_exactly() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|t| 3.0 * t - 1.0).collect();
        let s = CubicSpline::natural(x, y);
        for i in 0..90 {
            let t = i as f64 * 0.1;
            assert!((s.eval(t) - (3.0 * t - 1.0)).abs() < 1e-10);
            assert!((s.eval_deriv(t) - 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn approximates_sine_with_small_error() {
        let n = 50;
        let x: Vec<f64> = (0..n)
            .map(|i| i as f64 / (n - 1) as f64 * std::f64::consts::PI)
            .collect();
        let y: Vec<f64> = x.iter().map(|t| t.sin()).collect();
        let s = CubicSpline::natural(x, y);
        for i in 0..500 {
            let t = i as f64 / 499.0 * std::f64::consts::PI;
            assert!((s.eval(t) - t.sin()).abs() < 1e-5, "at t = {t}");
        }
    }

    #[test]
    fn integral_of_sine_over_pi_is_two() {
        let n = 200;
        let x: Vec<f64> = (0..n)
            .map(|i| i as f64 / (n - 1) as f64 * std::f64::consts::PI)
            .collect();
        let y: Vec<f64> = x.iter().map(|t| t.sin()).collect();
        let s = CubicSpline::natural(x, y);
        assert!((s.integral() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn locate_plus_eval_at_is_bit_identical_to_eval() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.13).exp() * 0.01).collect();
        let y: Vec<f64> = x.iter().map(|t| (t * 2.1).sin() / (1.0 + t)).collect();
        let s = CubicSpline::natural(x.clone(), y);
        // Inside, at knots, below the first knot, above the last knot.
        let mut probes: Vec<f64> = (0..200).map(|i| i as f64 * 0.021 - 0.05).collect();
        probes.extend_from_slice(&x);
        for t in probes {
            let (k, a, b) = CubicSpline::locate(&x, t);
            assert_eq!(
                s.eval_at(k, a, b).to_bits(),
                s.eval(t).to_bits(),
                "prepared eval must match direct eval at t = {t}"
            );
        }
    }

    #[test]
    fn construction_counter_increments() {
        let before = spline_constructions();
        let _ = CubicSpline::natural(vec![0.0, 1.0], vec![0.0, 1.0]);
        let _ = CubicSpline::natural(vec![0.0, 1.0], vec![1.0, 0.0]);
        assert_eq!(spline_constructions() - before, 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_knots_panic() {
        let _ = CubicSpline::natural(vec![0.0, 0.0, 1.0], vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.2).collect();
        let y: Vec<f64> = x.iter().map(|t| (t * 0.7).cos() * t).collect();
        let s = CubicSpline::natural(x, y);
        for i in 1..25 {
            let t = i as f64 * 0.23 + 0.1;
            let h = 1e-6;
            let fd = (s.eval(t + h) - s.eval(t - h)) / (2.0 * h);
            assert!((s.eval_deriv(t) - fd).abs() < 1e-6, "at t = {t}");
        }
    }

    #[test]
    fn memory_bytes_is_three_tables() {
        let s = CubicSpline::natural(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 4.0]);
        assert_eq!(s.memory_bytes(), 3 * 3 * 8);
    }
}
