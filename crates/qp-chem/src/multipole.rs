//! Multipole expansion of densities and the radial Poisson solver.
//!
//! This is the machinery behind the paper's response-potential phase
//! (`v¹_es,tot(r)`, Eq. 9): every atom's partitioned density is expanded in
//! real spherical harmonics on its radial shells (`rho_multipole`), the
//! radial Poisson equation is integrated per `(atom, l, m)` channel with an
//! Adams–Moulton linear multistep integrator (§4.4), and the resulting
//! partitioned Hartree potential is stored as cubic-spline tables
//! (`delta_v_hart_part_spl`, §4.2) that are then interpolated at every grid
//! point.

use crate::geometry::Structure;
use crate::grids::IntegrationGrid;
use crate::harmonics::{lm_index, num_harmonics, real_spherical_harmonics};
use crate::spline::CubicSpline;

/// Precomputed per-(grid point, atom) geometry for the Hartree phases.
///
/// The grid and atom positions never change across SCF/DFPT iterations, so
/// everything in `eval_atoms` that depends only on geometry — the
/// point-to-atom distance, the spherical harmonics, and the radial-spline
/// bracketing interval with its interpolation weights (shared by every lm
/// channel, because all radial splines sit on the same knot vector) — can
/// be computed once per system instead of once per iteration per point.
/// Per iteration this removes the dominant `atan2`/Legendre/`sin`/`cos`
/// work and all per-lm binary searches from the inner loop; what remains
/// is a pure fused-multiply stream over the tables.
///
/// Every cached value is produced by the *identical* floating-point
/// expressions the direct path uses, so plan-based evaluation is
/// bit-identical to [`HartreeSolution::eval_atoms`] and
/// [`MultipoleMoments::compute`].
#[derive(Debug)]
pub struct HartreePlan {
    /// Expansion order the `ylm` table was built for.
    pub lmax: usize,
    /// `(lmax+1)²`.
    pub n_lm: usize,
    natoms: usize,
    /// `r[ip*natoms + ia]`: distance from grid point `ip` to atom `ia`.
    r: Vec<f64>,
    /// Spline bracketing interval at `t = r.max(1e-6)` (valid while
    /// `r <= r_outer`; u32 to halve the table).
    k: Vec<u32>,
    /// Interpolation weight `a` of [`CubicSpline::locate`] at `t`.
    a: Vec<f64>,
    /// Interpolation weight `b` of [`CubicSpline::locate`] at `t`.
    b: Vec<f64>,
    /// `ylm[(ip*natoms + ia)*n_lm + lm]`: real spherical harmonics of the
    /// point-to-atom direction.
    ylm: Vec<f64>,
    /// Per-atom grid-point indices in grid order (the points partitioned
    /// to that atom) — lets the moment accumulation parallelize over atoms
    /// while preserving the serial accumulation order per atom.
    atom_points: Vec<Vec<u32>>,
}

impl HartreePlan {
    /// Build the plan for a structure/grid pair. Cost: one harmonics
    /// evaluation and one binary search per (point, atom) — about one
    /// iteration's worth of the work it then saves every iteration.
    pub fn build(structure: &Structure, grid: &IntegrationGrid, lmax: usize) -> HartreePlan {
        let n_lm = num_harmonics(lmax);
        let natoms = structure.len();
        let np = grid.points.len();
        let radii = grid.radial.radii();
        // Per-point rows computed in parallel (slot `ip` owns its row), then
        // flattened in index order — deterministic at any thread count.
        let rows = qp_par::map_vec((0..np).collect::<Vec<usize>>(), |ip| {
            let p = &grid.points[ip];
            let mut row_r = vec![0.0f64; natoms];
            let mut row_k = vec![0u32; natoms];
            let mut row_a = vec![0.0f64; natoms];
            let mut row_b = vec![0.0f64; natoms];
            let mut row_ylm = vec![0.0f64; natoms * n_lm];
            for ia in 0..natoms {
                let c = structure.atoms[ia].position;
                // Same arithmetic as eval_atoms / compute: d, then r.
                let d = [
                    p.position[0] - c[0],
                    p.position[1] - c[1],
                    p.position[2] - c[2],
                ];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                row_r[ia] = r;
                real_spherical_harmonics(lmax, d, &mut row_ylm[ia * n_lm..(ia + 1) * n_lm]);
                let (k, a, b) = CubicSpline::locate(radii, r.max(1e-6));
                row_k[ia] = k as u32;
                row_a[ia] = a;
                row_b[ia] = b;
            }
            (row_r, row_k, row_a, row_b, row_ylm)
        });
        let mut r = Vec::with_capacity(np * natoms);
        let mut k = Vec::with_capacity(np * natoms);
        let mut a = Vec::with_capacity(np * natoms);
        let mut b = Vec::with_capacity(np * natoms);
        let mut ylm = Vec::with_capacity(np * natoms * n_lm);
        for (row_r, row_k, row_a, row_b, row_ylm) in rows {
            r.extend_from_slice(&row_r);
            k.extend_from_slice(&row_k);
            a.extend_from_slice(&row_a);
            b.extend_from_slice(&row_b);
            ylm.extend_from_slice(&row_ylm);
        }
        let mut atom_points = vec![Vec::new(); natoms];
        for (ip, p) in grid.points.iter().enumerate() {
            atom_points[p.atom as usize].push(ip as u32);
        }
        HartreePlan {
            lmax,
            n_lm,
            natoms,
            r,
            k,
            a,
            b,
            ylm,
            atom_points,
        }
    }

    /// Number of atoms the plan covers.
    pub fn natoms(&self) -> usize {
        self.natoms
    }

    /// Heap footprint of the tables in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.r.len() * 8
            + self.k.len() * 4
            + self.a.len() * 8
            + self.b.len() * 8
            + self.ylm.len() * 8
            + self.atom_points.iter().map(|v| v.len() * 4).sum::<usize>()
    }

    /// Estimated table size for a hypothetical plan (gate big systems
    /// before paying the build).
    pub fn estimate_bytes(np: usize, natoms: usize, lmax: usize) -> usize {
        let n_lm = num_harmonics(lmax);
        np * natoms * (8 + 4 + 8 + 8 + n_lm * 8) + np * 4
    }
}

/// Cumulative integral `I_k = ∫_{x_0}^{x_k} f dx` on a uniformly spaced grid
/// (spacing `h`) using the 3rd-order Adams–Moulton corrector
/// `I_k = I_{k-1} + h/12 · (5 f_k + 8 f_{k-1} − f_{k-2})`, with a trapezoid
/// first step. `I_0 = 0`.
pub fn adams_moulton_cumulative(h: f64, f: &[f64]) -> Vec<f64> {
    let n = f.len();
    let mut out = vec![0.0; n];
    if n == 2 {
        out[1] = 0.5 * h * (f[0] + f[1]);
    } else if n >= 3 {
        // 3rd-order starting step (exact for quadratics, like the corrector).
        out[1] = h / 12.0 * (5.0 * f[0] + 8.0 * f[1] - f[2]);
    }
    for k in 2..n {
        out[k] = out[k - 1] + h / 12.0 * (5.0 * f[k] + 8.0 * f[k - 1] - f[k - 2]);
    }
    out
}

/// Multipole moments of a (partitioned) density:
/// `rho_multipole[atom][shell * n_lm + lm] = ∫ Y_lm n_atom(r_shell, Ω) dΩ`.
#[derive(Debug, Clone)]
pub struct MultipoleMoments {
    /// Expansion order.
    pub lmax: usize,
    /// `moments[atom][shell * n_lm + lm]`.
    pub moments: Vec<Vec<f64>>,
    /// Number of `(l, m)` channels: `(lmax+1)²`.
    pub n_lm: usize,
}

impl MultipoleMoments {
    /// Compute the per-atom multipole moments of the density tabulated at
    /// every grid point (`density` parallel to `grid.points`).
    ///
    /// This is the `rho_multipole` array the paper's packed AllReduce
    /// synthesizes row-by-row (§3.2.1).
    pub fn compute(
        structure: &Structure,
        grid: &IntegrationGrid,
        density: &[f64],
        lmax: usize,
    ) -> Self {
        assert_eq!(density.len(), grid.points.len());
        let n_lm = num_harmonics(lmax);
        let n_shells = grid.radial.len();
        let fourpi = 4.0 * std::f64::consts::PI;
        let mut moments = vec![vec![0.0; n_shells * n_lm]; structure.len()];
        let mut ylm = vec![0.0; n_lm];
        for (p, &n_val) in grid.points.iter().zip(density.iter()) {
            let ia = p.atom as usize;
            let center = structure.atoms[ia].position;
            let dir = [
                p.position[0] - center[0],
                p.position[1] - center[1],
                p.position[2] - center[2],
            ];
            real_spherical_harmonics(lmax, dir, &mut ylm);
            let base = p.shell as usize * n_lm;
            // n_atom = partition * n;  ∫ dΩ ≈ 4π Σ w_ang.
            let f = fourpi * p.w_angular * p.partition * n_val;
            let row = &mut moments[ia][base..base + n_lm];
            for (m, y) in row.iter_mut().zip(ylm.iter()) {
                *m += f * y;
            }
        }
        MultipoleMoments {
            lmax,
            moments,
            n_lm,
        }
    }

    /// Plan-accelerated [`compute`](Self::compute): the harmonics come from
    /// the [`HartreePlan`] tables and the per-atom accumulations run in
    /// parallel. Bit-identical to `compute` because each grid point
    /// contributes only to its own atom's moments (`p.atom`), the plan's
    /// `atom_points` lists preserve grid order, and the scalar expression
    /// `f * y` is unchanged — so every `moments[ia]` slot sees the exact
    /// same additions in the exact same order as the serial loop.
    pub fn compute_planned(
        structure: &Structure,
        grid: &IntegrationGrid,
        density: &[f64],
        plan: &HartreePlan,
    ) -> Self {
        assert_eq!(density.len(), grid.points.len());
        assert_eq!(plan.natoms, structure.len());
        let lmax = plan.lmax;
        let n_lm = plan.n_lm;
        let n_shells = grid.radial.len();
        let fourpi = 4.0 * std::f64::consts::PI;
        let natoms = plan.natoms;
        // Per-atom moment rows are independent: parallelize over atoms.
        // Each atom's accumulation walks its points in grid order, matching
        // the serial loop's visit order for that atom exactly.
        let moments = qp_par::map_vec((0..natoms).collect::<Vec<usize>>(), |ia| {
            let mut row = vec![0.0f64; n_shells * n_lm];
            for &ip32 in &plan.atom_points[ia] {
                let ip = ip32 as usize;
                let p = &grid.points[ip];
                let base = p.shell as usize * n_lm;
                let f = fourpi * p.w_angular * p.partition * density[ip];
                let ylm = &plan.ylm[(ip * natoms + ia) * n_lm..(ip * natoms + ia + 1) * n_lm];
                let dst = &mut row[base..base + n_lm];
                for (m, y) in dst.iter_mut().zip(ylm.iter()) {
                    *m += f * y;
                }
            }
            row
        });
        MultipoleMoments {
            lmax,
            moments,
            n_lm,
        }
    }

    /// Size in bytes of one atom's moment table (one "row" of
    /// `rho_multipole` in the paper's AllReduce packing discussion).
    pub fn row_bytes(&self) -> usize {
        self.moments
            .first()
            .map(|m| m.len() * std::mem::size_of::<f64>())
            .unwrap_or(0)
    }
}

/// The partitioned Hartree potential: per `(atom, lm)` a radial spline plus
/// the analytic far-field multipole tail.
#[derive(Debug)]
pub struct HartreeSolution {
    /// Expansion order.
    pub lmax: usize,
    /// Number of `(l, m)` channels.
    pub n_lm: usize,
    /// Atom centers.
    pub centers: Vec<[f64; 3]>,
    /// `splines[atom][lm]`: `v_lm(r)` for `r ≤ r_outer`.
    pub splines: Vec<Vec<CubicSpline>>,
    /// `tails[atom][lm]`: far-field coefficient `q_lm` with
    /// `v_lm(r > r_outer) = 4π/(2l+1) · q_lm / r^{l+1}`.
    pub tails: Vec<Vec<f64>>,
    /// Outermost tabulated radius.
    pub r_outer: f64,
}

/// Solve the (response) Poisson equation for a density given on the grid,
/// via per-atom multipole expansion and radial Adams–Moulton integration.
pub fn solve_poisson(
    structure: &Structure,
    grid: &IntegrationGrid,
    moments: &MultipoleMoments,
) -> HartreeSolution {
    let lmax = moments.lmax;
    let n_lm = moments.n_lm;
    let radii = grid.radial.radii();
    let n_r = radii.len();
    let h = (radii[n_r - 1] / radii[0]).ln() / (n_r - 1) as f64;
    let fourpi = 4.0 * std::f64::consts::PI;

    // Atoms are independent: integrate each atom's (l, m) channels in
    // parallel. map_vec returns results in index order and the per-atom
    // arithmetic is untouched, so the solution is bit-identical to the
    // serial sweep at any thread count.
    let per_atom = qp_par::map_vec((0..moments.moments.len()).collect::<Vec<usize>>(), |ia| {
        let mom = &moments.moments[ia];
        let mut atom_splines = Vec::with_capacity(n_lm);
        let mut atom_tails = Vec::with_capacity(n_lm);
        for lm in 0..n_lm {
            let (l, _m) = crate::harmonics::lm_from_index(lm);
            let li = l as i32;
            // rho_lm(r_k).
            let rho: Vec<f64> = (0..n_r).map(|k| mom[k * n_lm + lm]).collect();
            // Inner integral ∫_0^r s^{l+2} rho ds; log-measure ds = s·h·di.
            let f_in: Vec<f64> = (0..n_r).map(|k| radii[k].powi(li + 3) * rho[k]).collect();
            let mut inner = adams_moulton_cumulative(h, &f_in);
            // Add the [0, r_0] head assuming rho constant there.
            let head = rho[0] * radii[0].powi(li + 3) / (li + 3) as f64;
            for v in inner.iter_mut() {
                *v += head;
            }
            // Outer integral ∫_r^{rmax} s^{1-l} rho ds (reverse cumulative).
            let f_out: Vec<f64> = (0..n_r).map(|k| radii[k].powi(2 - li) * rho[k]).collect();
            let cum = adams_moulton_cumulative(h, &f_out);
            let total = cum[n_r - 1];
            let outer: Vec<f64> = cum.iter().map(|c| total - c).collect();

            let pref = fourpi / (2.0 * l as f64 + 1.0);
            let v: Vec<f64> = (0..n_r)
                .map(|k| pref * (inner[k] / radii[k].powi(li + 1) + radii[k].powi(li) * outer[k]))
                .collect();
            atom_tails.push(inner[n_r - 1]);
            atom_splines.push(CubicSpline::natural(radii.to_vec(), v));
        }
        (atom_splines, atom_tails)
    });
    let mut splines = Vec::with_capacity(structure.len());
    let mut tails = Vec::with_capacity(structure.len());
    for (atom_splines, atom_tails) in per_atom {
        splines.push(atom_splines);
        tails.push(atom_tails);
    }
    HartreeSolution {
        lmax,
        n_lm,
        centers: structure.atoms.iter().map(|a| a.position).collect(),
        splines,
        tails,
        r_outer: radii[n_r - 1],
    }
}

impl HartreeSolution {
    /// Evaluate the potential at `p`, summing the contribution of the listed
    /// atoms (callers prune by distance; pass `0..natoms` for all).
    pub fn eval_atoms(&self, p: [f64; 3], atoms: impl IntoIterator<Item = usize>) -> f64 {
        let fourpi = 4.0 * std::f64::consts::PI;
        let mut ylm = vec![0.0; self.n_lm];
        let mut v = 0.0;
        for ia in atoms {
            let c = self.centers[ia];
            let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            real_spherical_harmonics(self.lmax, d, &mut ylm);
            if r <= self.r_outer {
                for lm in 0..self.n_lm {
                    v += self.splines[ia][lm].eval(r.max(1e-6)) * ylm[lm];
                }
            } else {
                for lm in 0..self.n_lm {
                    let (l, _) = crate::harmonics::lm_from_index(lm);
                    let pref = fourpi / (2.0 * l as f64 + 1.0);
                    v += pref * self.tails[ia][lm] / r.powi(l as i32 + 1) * ylm[lm];
                }
            }
        }
        v
    }

    /// Evaluate summing all atoms.
    pub fn eval(&self, p: [f64; 3]) -> f64 {
        self.eval_atoms(p, 0..self.centers.len())
    }

    /// Plan-accelerated [`eval`](Self::eval) at grid point `ip`: distances,
    /// harmonics, and the shared spline bracket come from the
    /// [`HartreePlan`] tables instead of being recomputed. Atoms are summed
    /// in ascending order and every scalar expression matches `eval_atoms`
    /// exactly, so the result is bit-identical to `eval(grid.points[ip])`.
    pub fn eval_planned(&self, plan: &HartreePlan, ip: usize) -> f64 {
        debug_assert_eq!(plan.natoms, self.centers.len());
        debug_assert_eq!(plan.lmax, self.lmax);
        let fourpi = 4.0 * std::f64::consts::PI;
        let natoms = plan.natoms;
        let n_lm = self.n_lm;
        let mut v = 0.0;
        for ia in 0..natoms {
            let idx = ip * natoms + ia;
            let r = plan.r[idx];
            let ylm = &plan.ylm[idx * n_lm..(idx + 1) * n_lm];
            if r <= self.r_outer {
                let (k, a, b) = (plan.k[idx] as usize, plan.a[idx], plan.b[idx]);
                for lm in 0..n_lm {
                    v += self.splines[ia][lm].eval_at(k, a, b) * ylm[lm];
                }
            } else {
                for lm in 0..n_lm {
                    let (l, _) = crate::harmonics::lm_from_index(lm);
                    let pref = fourpi / (2.0 * l as f64 + 1.0);
                    v += pref * self.tails[ia][lm] / r.powi(l as i32 + 1) * ylm[lm];
                }
            }
        }
        v
    }

    /// Total bytes of all spline tables — the `delta_v_hart_part_spl`
    /// volume of Fig. 12(a).
    pub fn spline_table_bytes(&self) -> usize {
        self.splines
            .iter()
            .flat_map(|per_atom| per_atom.iter().map(|s| s.memory_bytes()))
            .sum()
    }
}

/// Far-field tail potential of a real-harmonic moment vector `q` about
/// `center`, evaluated at `p` with the caller's harmonics buffer (length
/// ≥ `(lmax+1)²`):
/// `v(p) = Σ_lm 4π/(2l+1) · q_lm / r^{l+1} · Y_lm(p − center)` — the same
/// analytic tail the `r > r_outer` branch of
/// [`HartreeSolution::eval_atoms`] uses per atom, here for an arbitrary
/// (e.g. cluster-aggregated) moment vector.
pub fn multipole_tail(
    q: &[f64],
    lmax: usize,
    center: [f64; 3],
    p: [f64; 3],
    ylm: &mut [f64],
) -> f64 {
    let fourpi = 4.0 * std::f64::consts::PI;
    let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    real_spherical_harmonics(lmax, d, ylm);
    let mut v = 0.0;
    let mut inv_rl1 = 1.0 / r; // 1/r^{l+1}
    for l in 0..=lmax {
        let pref = fourpi / (2.0 * l as f64 + 1.0) * inv_rl1;
        for m in -(l as i64)..=(l as i64) {
            let lm = lm_index(l, m);
            v += pref * q[lm] * ylm[lm];
        }
        inv_rl1 /= r;
    }
    v
}

/// [`multipole_tail`] on the fast harmonics path
/// ([`crate::harmonics::real_spherical_harmonics_fast`]). Same contraction,
/// not bit-identical in the last ulp — reserved for the hierarchical
/// far-field hot loop, which is on a tolerance contract rather than a
/// bit-identity one. The direct Hartree path must keep calling
/// [`multipole_tail`].
pub fn multipole_tail_fast(
    q: &[f64],
    lmax: usize,
    center: [f64; 3],
    p: [f64; 3],
    ylm: &mut [f64],
) -> f64 {
    let fourpi = 4.0 * std::f64::consts::PI;
    let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    crate::harmonics::real_spherical_harmonics_fast(lmax, d, ylm);
    let mut v = 0.0;
    let mut inv_rl1 = 1.0 / r; // 1/r^{l+1}
    for l in 0..=lmax {
        let pref = fourpi / (2.0 * l as f64 + 1.0) * inv_rl1;
        let mut dot = 0.0;
        for lm in l * l..(l + 1) * (l + 1) {
            dot += q[lm] * ylm[lm];
        }
        v += pref * dot;
        inv_rl1 /= r;
    }
    v
}

/// Translates real-harmonic multipole moment vectors between expansion
/// centers — the M2M operation of the hierarchical far field.
///
/// Every atom's `tails[ia]` row in a [`HartreeSolution`] is an *ideal point
/// multipole* of order `lmax_src` sitting at the atom center: beyond
/// `r_outer` its potential is exactly
/// `Σ_lm 4π/(2l+1)·q_lm/r^{l+1}·Y_lm`, and every moment above `lmax_src`
/// is exactly zero. Re-expanding that potential about a cluster center is
/// the classical solid-harmonic translation. With Racah-normalized complex
/// regular solid harmonics `R_l^m(r) = sqrt(4π/(2l+1)) r^l Y_l^m(r̂)` and
/// scaled complex moments `μ_l^m = sqrt(4π/(2l+1)) q^c_{l,m}`, the
/// binomial addition theorem
/// `R_L^M(u+v) = Σ_{l,m} sqrt(C(L+M,l+m) C(L−M,l−m)) R_l^m(u) R_{L−l}^{M−m}(v)`
/// gives
///
/// ```text
/// μ'_L^M(c) = Σ_{l ≤ min(L, lmax_src)} Σ_m sqrt(C(L+M, l+m) C(L−M, l−m))
///             · μ_l^m · conj(R_{L−l}^{M−m}(t)),      t = a − c.
/// ```
///
/// Because the source moments vanish identically above `lmax_src`, the
/// translated moments are **exact** — the far field's only approximation
/// is truncating the destination expansion at `lmax_dst`, which the
/// cluster-acceptance criterion bounds by the accuracy budget. The largest
/// binomial involved is `C(2·lmax_dst, lmax_dst)` (≈ 2.7e6 at
/// `lmax_dst = 12`), comfortably exact in f64.
#[derive(Debug)]
pub struct MomentTranslator {
    lmax_src: usize,
    lmax_dst: usize,
    /// `sqrt(C(n, k))`, row-major over `n, k ≤ 2·lmax_dst`.
    sqrt_binom: Vec<f64>,
}

impl MomentTranslator {
    /// Precompute the √-binomial table for translating order-`lmax_src`
    /// sources into order-`lmax_dst` destination expansions.
    pub fn new(lmax_src: usize, lmax_dst: usize) -> Self {
        assert!(lmax_src <= lmax_dst);
        let w = 2 * lmax_dst + 1;
        let mut binom = vec![0.0f64; w * w];
        for n in 0..w {
            binom[n * w] = 1.0;
            for k in 1..=n {
                binom[n * w + k] = binom[(n - 1) * w + k - 1] + binom[(n - 1) * w + k];
            }
        }
        MomentTranslator {
            lmax_src,
            lmax_dst,
            sqrt_binom: binom.iter().map(|b| b.sqrt()).collect(),
        }
    }

    /// Destination expansion order.
    pub fn lmax_dst(&self) -> usize {
        self.lmax_dst
    }

    /// Accumulate the real moments `src` (about `src_center`, order
    /// `lmax_src`) into the real moment vector `dst` (about `dst_center`,
    /// order `lmax_dst`, `(lmax_dst+1)²` slots, `+=`).
    ///
    /// The real↔complex conversions follow this crate's harmonic
    /// convention (`Y^cos_{l,m} = (−1)^m √2 Re Y_l^m`,
    /// `Y^sin_{l,m} = (−1)^m √2 Im Y_l^m`, stored at `lm_index(l, ±m)`),
    /// so `Σ q_lm Y^real_lm = Σ q^c_{l,m} Y_l^m` with
    /// `q^c_{l,m} = (−1)^m (a − ib)/√2` and `q^c_{l,−m} = (a + ib)/√2`.
    pub fn translate(
        &self,
        src: &[f64],
        src_center: [f64; 3],
        dst_center: [f64; 3],
        dst: &mut [f64],
    ) {
        let n_src = num_harmonics(self.lmax_src);
        let n_dst = num_harmonics(self.lmax_dst);
        assert!(src.len() >= n_src && dst.len() >= n_dst);
        let fourpi = 4.0 * std::f64::consts::PI;
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;

        // Complex scaled source moments μ_l^m = sqrt(4π/(2l+1)) q^c_{l,m}.
        let mut mu_re = vec![0.0; n_src];
        let mut mu_im = vec![0.0; n_src];
        for l in 0..=self.lmax_src {
            let scale = (fourpi / (2.0 * l as f64 + 1.0)).sqrt();
            mu_re[lm_index(l, 0)] = scale * src[lm_index(l, 0)];
            let mut sign = 1.0;
            for m in 1..=(l as i64) {
                sign = -sign; // (−1)^m
                let a = src[lm_index(l, m)] * inv_sqrt2 * scale;
                let b = src[lm_index(l, -m)] * inv_sqrt2 * scale;
                mu_re[lm_index(l, m)] = sign * a;
                mu_im[lm_index(l, m)] = -sign * b;
                mu_re[lm_index(l, -m)] = a;
                mu_im[lm_index(l, -m)] = b;
            }
        }

        // Complex regular solid harmonics R_j^k(t), t = src − dst center.
        let t = [
            src_center[0] - dst_center[0],
            src_center[1] - dst_center[1],
            src_center[2] - dst_center[2],
        ];
        let r = (t[0] * t[0] + t[1] * t[1] + t[2] * t[2]).sqrt();
        let mut ylm = vec![0.0; n_dst];
        real_spherical_harmonics(self.lmax_dst, t, &mut ylm);
        let mut rr_re = vec![0.0; n_dst];
        let mut rr_im = vec![0.0; n_dst];
        let mut rpow = 1.0; // r^j; 0^0 = 1 keeps the t = 0 translation exact
        for j in 0..=self.lmax_dst {
            let scale = (fourpi / (2.0 * j as f64 + 1.0)).sqrt() * rpow;
            rr_re[lm_index(j, 0)] = scale * ylm[lm_index(j, 0)];
            let mut sign = 1.0;
            for k in 1..=(j as i64) {
                sign = -sign; // (−1)^k
                let yc = ylm[lm_index(j, k)] * inv_sqrt2 * scale;
                let ys = ylm[lm_index(j, -k)] * inv_sqrt2 * scale;
                rr_re[lm_index(j, k)] = sign * yc;
                rr_im[lm_index(j, k)] = sign * ys;
                rr_re[lm_index(j, -k)] = yc;
                rr_im[lm_index(j, -k)] = -ys;
            }
            rpow *= r;
        }

        // μ'_L^{−M} for M ≥ 0 (a real density determines the +M half), then
        // straight back to real moments.
        let w = 2 * self.lmax_dst + 1;
        for ll in 0..=self.lmax_dst {
            let inv_scale = ((2.0 * ll as f64 + 1.0) / fourpi).sqrt();
            for mm in 0..=(ll as i64) {
                let big_m = -mm;
                let mut acc_re = 0.0;
                let mut acc_im = 0.0;
                for l in 0..=ll.min(self.lmax_src) {
                    let j = ll - l;
                    let lo = (-(l as i64)).max(big_m - j as i64);
                    let hi = (l as i64).min(big_m + j as i64);
                    for m in lo..=hi {
                        let sb = self.sqrt_binom
                            [(ll as i64 + big_m) as usize * w + (l as i64 + m) as usize]
                            * self.sqrt_binom
                                [(ll as i64 - big_m) as usize * w + (l as i64 - m) as usize];
                        let s = lm_index(l, m);
                        let rj = lm_index(j, big_m - m);
                        // conj(R_j^{M−m}) = (re, −im).
                        let (br, bi) = (rr_re[rj], -rr_im[rj]);
                        acc_re += sb * (mu_re[s] * br - mu_im[s] * bi);
                        acc_im += sb * (mu_re[s] * bi + mu_im[s] * br);
                    }
                }
                let qr = acc_re * inv_scale;
                let qi = acc_im * inv_scale;
                if mm == 0 {
                    dst[lm_index(ll, 0)] += qr;
                } else {
                    // q'^c_{L,−M} = (a + ib)/√2 ⇒ a = √2·Re, b = √2·Im.
                    dst[lm_index(ll, mm)] += std::f64::consts::SQRT_2 * qr;
                    dst[lm_index(ll, -mm)] += std::f64::consts::SQRT_2 * qi;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Element;
    use crate::geometry::Atom;
    use crate::grids::GridSettings;
    use qp_linalg::vecops::dist3;

    fn single_atom() -> Structure {
        Structure::new(vec![Atom::new(Element::O, [0.0; 3])])
    }

    #[test]
    fn adams_moulton_integrates_polynomial_exactly() {
        // 3rd-order AM is exact for quadratics: ∫ x² = x³/3.
        let h = 0.1;
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * h).collect();
        let f: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let cum = adams_moulton_cumulative(h, &f);
        for (k, x) in xs.iter().enumerate().skip(2) {
            assert!(
                (cum[k] - x * x * x / 3.0).abs() < 1e-10,
                "k = {k}: {} vs {}",
                cum[k],
                x * x * x / 3.0
            );
        }
    }

    #[test]
    fn adams_moulton_sine() {
        let h = 0.01;
        let f: Vec<f64> = (0..314).map(|i| (i as f64 * h).sin()).collect();
        let cum = adams_moulton_cumulative(h, &f);
        let x_end = 313.0 * h;
        assert!((cum[313] - (1.0 - x_end.cos())).abs() < 1e-8);
    }

    fn gaussian_density(grid: &IntegrationGrid, center: [f64; 3], alpha: f64, q: f64) -> Vec<f64> {
        let norm = q * (alpha / std::f64::consts::PI).powf(1.5);
        grid.points
            .iter()
            .map(|p| {
                let r = dist3(p.position, center);
                norm * (-alpha * r * r).exp()
            })
            .collect()
    }

    #[test]
    fn monopole_moment_recovers_charge() {
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let n = gaussian_density(&grid, [0.0; 3], 1.2, 3.0);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 2);
        // Q = ∫ n = Σ_k w_rad_k · sqrt(4π) · rho_00(r_k).
        let q: f64 = grid
            .radial
            .weights()
            .iter()
            .enumerate()
            .map(|(k, w)| w * mom.moments[0][k * mom.n_lm] * (4.0 * std::f64::consts::PI).sqrt())
            .sum();
        assert!((q - 3.0).abs() < 0.01, "recovered charge {q}");
    }

    #[test]
    fn spherical_density_has_no_higher_moments() {
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let n = gaussian_density(&grid, [0.0; 3], 1.0, 1.0);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 3);
        for k in 0..grid.radial.len() {
            for lm in 1..mom.n_lm {
                assert!(
                    mom.moments[0][k * mom.n_lm + lm].abs() < 1e-8,
                    "shell {k}, lm {lm}"
                );
            }
        }
    }

    #[test]
    fn hartree_of_gaussian_matches_erf() {
        // v(r) = Q erf(sqrt(α) r)/r for a normalized Gaussian charge.
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let alpha = 1.0;
        let q = 2.0;
        let n = gaussian_density(&grid, [0.0; 3], alpha, q);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 2);
        let sol = solve_poisson(&s, &grid, &mom);
        let erf = |x: f64| {
            // Abramowitz-Stegun 7.1.26, |err| < 1.5e-7.
            let t = 1.0 / (1.0 + 0.3275911 * x);
            1.0 - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp()
        };
        for &r in &[0.5, 1.0, 2.0, 4.0, 7.0] {
            let v = sol.eval([r, 0.0, 0.0]);
            let expect = q * erf(alpha.sqrt() * r) / r;
            assert!(
                (v - expect).abs() < 0.01 * expect.abs().max(0.1),
                "r = {r}: {v} vs {expect}"
            );
        }
    }

    #[test]
    fn far_field_is_q_over_r() {
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let n = gaussian_density(&grid, [0.0; 3], 2.0, 5.0);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 2);
        let sol = solve_poisson(&s, &grid, &mom);
        let r = sol.r_outer * 2.0;
        let v = sol.eval([0.0, 0.0, r]);
        assert!((v - 5.0 / r).abs() < 1e-3, "v = {v}, Q/r = {}", 5.0 / r);
    }

    #[test]
    fn off_center_gaussian_monopole_tail() {
        // Density centered on the atom but evaluated far away must still
        // look like Q/|r| — exercises the full lm machinery.
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let n = gaussian_density(&grid, [0.3, -0.2, 0.1], 2.0, 1.0);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 4);
        let sol = solve_poisson(&s, &grid, &mom);
        let p = [12.0, 5.0, -8.0];
        let d = dist3(p, [0.3, -0.2, 0.1]);
        let v = sol.eval(p);
        assert!((v - 1.0 / d).abs() < 5e-3, "v = {v} vs {}", 1.0 / d);
    }

    #[test]
    fn two_center_potential_superposes() {
        // Two atoms, each with a Gaussian blob on its own grid: the total
        // potential is the sum of the two single-center potentials.
        let s2 = Structure::new(vec![
            Atom::new(Element::O, [0.0; 3]),
            Atom::new(Element::O, [4.0, 0.0, 0.0]),
        ]);
        let grid = IntegrationGrid::build(&s2, &GridSettings::light());
        let n: Vec<f64> = grid
            .points
            .iter()
            .map(|p| {
                let r1 = dist3(p.position, [0.0; 3]);
                let r2 = dist3(p.position, [4.0, 0.0, 0.0]);
                (1.5f64 / std::f64::consts::PI).powf(1.5)
                    * ((-1.5 * r1 * r1).exp() + (-1.5 * r2 * r2).exp())
            })
            .collect();
        let mom = MultipoleMoments::compute(&s2, &grid, &n, 4);
        let sol = solve_poisson(&s2, &grid, &mom);
        // At the midpoint, each unit charge contributes erf-screened ~1/2.
        let v = sol.eval([2.0, 0.0, 0.0]);
        assert!((v - 1.0).abs() < 0.02, "midpoint potential {v}");
    }

    #[test]
    fn planned_moments_and_eval_are_bit_identical_to_direct() {
        // Two off-axis atoms so the harmonics, partition weights, and both
        // spline/tail branches of the evaluator are all exercised.
        let s2 = Structure::new(vec![
            Atom::new(Element::O, [0.1, -0.2, 0.05]),
            Atom::new(Element::H, [1.7, 0.4, -0.3]),
        ]);
        let grid = IntegrationGrid::build(&s2, &GridSettings::coarse());
        let n: Vec<f64> = grid
            .points
            .iter()
            .map(|p| {
                let r1 = dist3(p.position, [0.1, -0.2, 0.05]);
                (-0.8 * r1 * r1).exp() * (1.0 + 0.3 * p.position[0])
            })
            .collect();
        let lmax = 3;
        let plan = HartreePlan::build(&s2, &grid, lmax);
        assert_eq!(plan.natoms(), 2);
        assert!(plan.memory_bytes() > 0);

        let direct = MultipoleMoments::compute(&s2, &grid, &n, lmax);
        let planned = MultipoleMoments::compute_planned(&s2, &grid, &n, &plan);
        for (ia, (d, p)) in direct
            .moments
            .iter()
            .zip(planned.moments.iter())
            .enumerate()
        {
            for (j, (dv, pv)) in d.iter().zip(p.iter()).enumerate() {
                assert_eq!(
                    dv.to_bits(),
                    pv.to_bits(),
                    "moment mismatch atom {ia} slot {j}"
                );
            }
        }

        let sol = solve_poisson(&s2, &grid, &direct);
        for ip in (0..grid.points.len()).step_by(7) {
            let d = sol.eval(grid.points[ip].position);
            let p = sol.eval_planned(&plan, ip);
            assert_eq!(d.to_bits(), p.to_bits(), "potential mismatch at point {ip}");
        }
    }

    #[test]
    fn row_bytes_matches_layout() {
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::coarse());
        let n = vec![0.0; grid.len()];
        let mom = MultipoleMoments::compute(&s, &grid, &n, 3);
        assert_eq!(mom.row_bytes(), grid.radial.len() * 16 * 8);
    }

    fn lcg_moments(lmax: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..num_harmonics(lmax))
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64) / (u32::MAX as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn translation_by_zero_is_identity() {
        let lmax = 4;
        let src = lcg_moments(lmax, 5);
        let tr = MomentTranslator::new(lmax, 12);
        let c = [1.3, -0.7, 2.1];
        let mut dst = vec![0.0; num_harmonics(12)];
        tr.translate(&src, c, c, &mut dst);
        for lm in 0..num_harmonics(12) {
            let expect = if lm < src.len() { src[lm] } else { 0.0 };
            assert!(
                (dst[lm] - expect).abs() < 1e-13,
                "slot {lm}: {} vs {expect}",
                dst[lm]
            );
        }
    }

    #[test]
    fn translated_expansion_reproduces_tail_potential() {
        // Random point multipoles translated to a common center must
        // reproduce the summed tail potential at well-separated points to
        // the (shift/dist)^{lmax_dst+1} truncation error.
        let lmax_src = 3;
        let lmax_dst = 12;
        let tr = MomentTranslator::new(lmax_src, lmax_dst);
        let centers = [[0.4, -0.3, 0.2], [-0.5, 0.6, -0.1], [0.1, 0.2, -0.6]];
        let moments: Vec<Vec<f64>> = (0..3).map(|i| lcg_moments(lmax_src, 11 + i)).collect();
        let dst_center = [0.0, 0.1, -0.05];
        let mut agg = vec![0.0; num_harmonics(lmax_dst)];
        for (c, q) in centers.iter().zip(moments.iter()) {
            tr.translate(q, *c, dst_center, &mut agg);
        }
        let mut ylm = vec![0.0; num_harmonics(lmax_dst)];
        for p in [[8.0, 3.0, -2.0], [-5.0, -6.0, 4.0], [0.5, 9.0, 7.5]] {
            let direct: f64 = centers
                .iter()
                .zip(moments.iter())
                .map(|(c, q)| multipole_tail(q, lmax_src, *c, p, &mut ylm))
                .sum();
            let tree = multipole_tail(&agg, lmax_dst, dst_center, p, &mut ylm);
            assert!(
                (tree - direct).abs() < 1e-11 * direct.abs().max(1.0),
                "p = {p:?}: {tree} vs {direct}"
            );
        }
    }

    #[test]
    fn tail_helper_matches_eval_atoms_tail_branch() {
        // multipole_tail on one atom's tail row must agree with the tail
        // branch of eval_atoms (same formula, different loop shape).
        let s = single_atom();
        let grid = IntegrationGrid::build(&s, &GridSettings::light());
        let n = gaussian_density(&grid, [0.2, -0.1, 0.3], 1.5, 2.0);
        let mom = MultipoleMoments::compute(&s, &grid, &n, 4);
        let sol = solve_poisson(&s, &grid, &mom);
        let mut ylm = vec![0.0; sol.n_lm];
        for p in [[15.0, 2.0, -3.0], [-9.0, 11.0, 6.0]] {
            let direct = sol.eval_atoms(p, [0usize]);
            let tail = multipole_tail(&sol.tails[0], sol.lmax, sol.centers[0], p, &mut ylm);
            assert!(
                (tail - direct).abs() < 1e-14 * direct.abs().max(1.0),
                "{tail} vs {direct}"
            );
        }
    }
}
