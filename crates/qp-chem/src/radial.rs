//! Logarithmic radial grids.
//!
//! All-electron NAO codes tabulate radial functions on logarithmic grids so
//! that the nuclear-cusp region is resolved; the paper's "non-uniform radial
//! spherical grid points centered on the geometric coordinates of the
//! nucleus" (§3.1) are the product of these shells with the angular grids.

/// A logarithmic radial grid `r_i = r_min (r_max/r_min)^(i/(N-1))`.
#[derive(Debug, Clone)]
pub struct RadialGrid {
    r: Vec<f64>,
    /// Integration weights including the `r²` Jacobian:
    /// `∫ f(r) r² dr ≈ Σ w_i f(r_i)`.
    w: Vec<f64>,
}

impl RadialGrid {
    /// Build a grid of `n` shells from `r_min` to `r_max` (Bohr).
    pub fn logarithmic(r_min: f64, r_max: f64, n: usize) -> Self {
        assert!(n >= 2 && r_min > 0.0 && r_max > r_min);
        let h = (r_max / r_min).ln() / (n - 1) as f64;
        let r: Vec<f64> = (0..n).map(|i| r_min * (h * i as f64).exp()).collect();
        // Trapezoid in log space: dr = r h, plus the r^2 Jacobian.
        let mut w: Vec<f64> = r.iter().map(|&ri| ri * ri * ri * h).collect();
        w[0] *= 0.5;
        w[n - 1] *= 0.5;
        RadialGrid { r, w }
    }

    /// Shell radii.
    pub fn radii(&self) -> &[f64] {
        &self.r
    }

    /// Integration weights (with `r²` Jacobian).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Number of shells.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// True when the grid has no shells.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Integrate `Σ w_i f(r_i)` — i.e. `∫ f(r) r² dr`.
    pub fn integrate(&self, f: impl Fn(f64) -> f64) -> f64 {
        self.r
            .iter()
            .zip(self.w.iter())
            .map(|(&ri, &wi)| wi * f(ri))
            .sum()
    }

    /// Integrate tabulated values `Σ w_i f_i`.
    pub fn integrate_values(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.r.len());
        self.w.iter().zip(f.iter()).map(|(w, f)| w * f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii_monotone_and_bounded() {
        let g = RadialGrid::logarithmic(1e-4, 10.0, 100);
        assert_eq!(g.len(), 100);
        assert!((g.radii()[0] - 1e-4).abs() < 1e-12);
        assert!((g.radii()[99] - 10.0).abs() < 1e-9);
        for w in g.radii().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn integrates_exponential_norm() {
        // ∫ e^{-2r} r² dr = 2/8 = 0.25 over [0, ∞).
        let g = RadialGrid::logarithmic(1e-6, 40.0, 600);
        let v = g.integrate(|r| (-2.0 * r).exp());
        assert!((v - 0.25).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn integrates_gaussian() {
        // ∫ e^{-r²} r² dr = sqrt(pi)/4.
        let g = RadialGrid::logarithmic(1e-6, 12.0, 500);
        let v = g.integrate(|r| (-r * r).exp());
        let expect = std::f64::consts::PI.sqrt() / 4.0;
        assert!((v - expect).abs() < 1e-5, "got {v}, expected {expect}");
    }

    #[test]
    fn integrate_values_matches_closure() {
        let g = RadialGrid::logarithmic(0.01, 5.0, 50);
        let tab: Vec<f64> = g.radii().iter().map(|&r| r.sin()).collect();
        let a = g.integrate_values(&tab);
        let b = g.integrate(|r| r.sin());
        assert!((a - b).abs() < 1e-14);
    }
}
