//! Atom-centered integration grids with Becke partition weights.
//!
//! This is the discretized 3-D grid of Fig. 2 of the paper: every atom
//! carries non-uniform radial shells, each shell an angular (Lebedev) point
//! set, and overlapping atomic cells are disentangled by a smooth partition
//! of unity (Becke's scheme) so that `∫ f d³r = Σ_points w · f(p)` is exact
//! for well-resolved integrands.

use crate::angular::AngularGrid;
use crate::geometry::Structure;
use crate::radial::RadialGrid;
use qp_linalg::vecops::dist3;

/// Grid resolution settings.
#[derive(Debug, Clone, Copy)]
pub struct GridSettings {
    /// Radial shells per atom.
    pub n_radial: usize,
    /// Innermost shell radius (Bohr).
    pub r_min: f64,
    /// Outermost shell radius (Bohr).
    pub r_max: f64,
    /// Lebedev order for the outer shells.
    pub max_angular: usize,
    /// Lebedev order for the innermost shells.
    pub min_angular: usize,
    /// Neighbour cutoff for partition weights (Bohr).
    pub partition_cutoff: f64,
}

impl GridSettings {
    /// Production-like settings for real SCF/DFPT runs on small molecules
    /// (the paper's "light" settings analogue).
    pub fn light() -> Self {
        GridSettings {
            n_radial: 40,
            r_min: 0.02,
            r_max: 9.0,
            max_angular: 50,
            // Uniform 50-point shells: the logarithmic radial grid puts half
            // its shells inside r < 0.4 Bohr, so ramping the angular order
            // there measurably breaks rotational invariance for only ~4 %
            // point savings. (FHI-aims can afford a real ramp because it
            // ramps 50 -> 302.)
            min_angular: 50,
            partition_cutoff: 12.0,
        }
    }

    /// Coarse settings for structural/scaling studies on huge systems where
    /// only grid statistics matter (batching, task mapping, counters).
    pub fn coarse() -> Self {
        GridSettings {
            n_radial: 10,
            r_min: 0.05,
            r_max: 6.0,
            max_angular: 14,
            min_angular: 6,
            partition_cutoff: 8.0,
        }
    }

    /// Points generated per atom (before partition weighting, which never
    /// removes points).
    pub fn points_per_atom(&self) -> usize {
        let radial = RadialGrid::logarithmic(self.r_min, self.r_max, self.n_radial);
        radial
            .radii()
            .iter()
            .map(|&r| self.angular_order_for(r))
            .sum()
    }

    /// Angular order used at radius `r`: grows from `min_angular` to
    /// `max_angular` with radius (FHI-aims' "grid-adapted" refinement).
    ///
    /// The ramp is deliberately conservative: only the innermost shells
    /// (where the density is dominated by the spherical core) drop below
    /// `max_angular`. Coarser mid-shell ramps measurably break rotational
    /// invariance of integrated operators (the p-orbital products and
    /// partition weights carry angular content well past degree 7).
    pub fn angular_order_for(&self, r: f64) -> usize {
        let frac = (r / self.r_max).clamp(0.0, 1.0);
        let target = if frac < 0.04 {
            self.min_angular
        } else if frac < 0.12 {
            38
        } else {
            self.max_angular
        };
        // min()/max() rather than clamp(): callers may set
        // max_angular < min_angular (coarse overrides), where max wins.
        target.max(self.min_angular).min(self.max_angular)
    }
}

/// One integration grid point.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Cartesian position (Bohr).
    pub position: [f64; 3],
    /// Owning atom (the nucleus the shell is centered on) — the paper's
    /// "grid points of atom X".
    pub atom: u32,
    /// Radial shell index within the owning atom.
    pub shell: u32,
    /// Full quadrature weight: `4π · w_ang · w_rad(r²) · partition`.
    pub weight: f64,
    /// The Becke partition factor alone (needed by the multipole machinery
    /// to form per-atom partitioned densities).
    pub partition: f64,
    /// Angular weight alone (`Σ_ang w_ang = 1` per shell).
    pub w_angular: f64,
}

/// The full integration grid of a structure.
#[derive(Debug, Clone)]
pub struct IntegrationGrid {
    /// All points, grouped atom-major then shell-major.
    pub points: Vec<GridPoint>,
    /// `atom_ranges[i]` is the index range of atom `i`'s points.
    pub atom_ranges: Vec<std::ops::Range<usize>>,
    /// Radial grid shared by all atoms.
    pub radial: RadialGrid,
    settings: GridSettings,
}

/// Becke's smoothing polynomial iterated three times.
fn becke_s(mu: f64) -> f64 {
    let p = |x: f64| 1.5 * x - 0.5 * x * x * x;
    let f = p(p(p(mu)));
    0.5 * (1.0 - f)
}

impl IntegrationGrid {
    /// Build the grid.
    pub fn build(structure: &Structure, settings: &GridSettings) -> Self {
        let radial = RadialGrid::logarithmic(settings.r_min, settings.r_max, settings.n_radial);
        // Pre-build the angular grids we will need.
        let orders: Vec<usize> = radial
            .radii()
            .iter()
            .map(|&r| settings.angular_order_for(r))
            .collect();
        let unique_orders: std::collections::BTreeSet<usize> = orders.iter().copied().collect();
        let angular: std::collections::BTreeMap<usize, AngularGrid> = unique_orders
            .into_iter()
            .map(|o| (o, AngularGrid::lebedev(o)))
            .collect();

        let neighbours = structure.neighbours_within(settings.partition_cutoff);
        let fourpi = 4.0 * std::f64::consts::PI;

        let mut points = Vec::new();
        let mut atom_ranges = Vec::with_capacity(structure.len());
        for (ia, atom) in structure.atoms.iter().enumerate() {
            let start = points.len();
            let neigh = &neighbours[ia];
            for (k, (&r, &wr)) in radial.radii().iter().zip(radial.weights()).enumerate() {
                let ang = &angular[&orders[k]];
                for ap in ang.points() {
                    let p = [
                        atom.position[0] + r * ap.dir[0],
                        atom.position[1] + r * ap.dir[1],
                        atom.position[2] + r * ap.dir[2],
                    ];
                    let partition = becke_partition(structure, ia, neigh, p);
                    points.push(GridPoint {
                        position: p,
                        atom: ia as u32,
                        shell: k as u32,
                        weight: fourpi * ap.weight * wr * partition,
                        partition,
                        w_angular: ap.weight,
                    });
                }
            }
            atom_ranges.push(start..points.len());
        }
        IntegrationGrid {
            points,
            atom_ranges,
            radial,
            settings: *settings,
        }
    }

    /// The settings the grid was built with.
    pub fn settings(&self) -> &GridSettings {
        &self.settings
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrate a function: `Σ w f(p)`.
    pub fn integrate(&self, f: impl Fn([f64; 3]) -> f64) -> f64 {
        self.points.iter().map(|p| p.weight * f(p.position)).sum()
    }

    /// Integrate tabulated values (slice parallel to `points`).
    pub fn integrate_values(&self, vals: &[f64]) -> f64 {
        assert_eq!(vals.len(), self.points.len());
        self.points
            .iter()
            .zip(vals.iter())
            .map(|(p, v)| p.weight * v)
            .sum()
    }
}

/// Becke partition weight of atom `ia` at point `p`, restricted to the given
/// neighbour list (O(neighbours²) per point).
fn becke_partition(structure: &Structure, ia: usize, neighbours: &[usize], p: [f64; 3]) -> f64 {
    if neighbours.is_empty() {
        return 1.0;
    }
    // Cell functions for the owning atom and each neighbour.
    let mut cell_i = 1.0;
    let mut total = 0.0;
    let r_i = dist3(p, structure.atoms[ia].position);
    for &j in neighbours {
        let r_j = dist3(p, structure.atoms[j].position);
        let r_ij = dist3(structure.atoms[ia].position, structure.atoms[j].position);
        let mu = (r_i - r_j) / r_ij;
        cell_i *= becke_s(mu);
    }
    total += cell_i;
    for &j in neighbours {
        let mut cell_j = 1.0;
        let r_j = dist3(p, structure.atoms[j].position);
        // Neighbours of j relevant at p: approximate with {ia} ∪ neighbours,
        // which contains every atom with noticeable weight at p.
        for &k in neighbours.iter().chain(std::iter::once(&ia)) {
            if k == j {
                continue;
            }
            let r_k = dist3(p, structure.atoms[k].position);
            let r_jk = dist3(structure.atoms[j].position, structure.atoms[k].position);
            let mu = (r_j - r_k) / r_jk;
            cell_j *= becke_s(mu);
        }
        total += cell_j;
    }
    if total <= 0.0 {
        0.0
    } else {
        cell_i / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{polyethylene, water};

    #[test]
    fn becke_s_properties() {
        assert!((becke_s(-1.0) - 1.0).abs() < 1e-12);
        assert!((becke_s(1.0) - 0.0).abs() < 1e-12);
        assert!((becke_s(0.0) - 0.5).abs() < 1e-12);
        // Monotone decreasing.
        let mut prev = becke_s(-1.0);
        for i in 1..=20 {
            let v = becke_s(-1.0 + 0.1 * i as f64);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn grid_point_counts_match_settings() {
        let w = water();
        let s = GridSettings::light();
        let g = IntegrationGrid::build(&w, &s);
        assert_eq!(g.len(), 3 * s.points_per_atom());
        assert_eq!(g.atom_ranges.len(), 3);
        assert_eq!(g.atom_ranges[0].len(), s.points_per_atom());
    }

    #[test]
    fn partition_of_unity_single_atom() {
        // One atom: all partitions exactly 1.
        let s = Structure::new(vec![crate::geometry::Atom::new(
            crate::elements::Element::O,
            [0.0; 3],
        )]);
        let g = IntegrationGrid::build(&s, &GridSettings::light());
        for p in &g.points {
            assert_eq!(p.partition, 1.0);
        }
    }

    #[test]
    fn integrates_single_gaussian() {
        // ∫ e^{-r²} d³r = π^{3/2} regardless of the molecular frame.
        let w = water();
        let g = IntegrationGrid::build(&w, &GridSettings::light());
        let c = w.atoms[0].position;
        let v = g.integrate(|p| {
            let d = dist3(p, c);
            (-d * d).exp()
        });
        // Our largest Lebedev rule is 50 points (FHI-aims "light" goes to
        // 302), so ~1% multi-center quadrature error is expected and,
        // crucially, consistent across all matrix elements.
        let expect = std::f64::consts::PI.powf(1.5);
        assert!((v - expect).abs() / expect < 2e-2, "got {v}, want {expect}");
    }

    #[test]
    fn integrates_multi_center_sum() {
        // Sum of Gaussians on each H of water: tests the partition of unity
        // across overlapping atomic cells.
        let w = water();
        let g = IntegrationGrid::build(&w, &GridSettings::light());
        let v = g.integrate(|p| {
            w.atoms
                .iter()
                .map(|a| {
                    let d = dist3(p, a.position);
                    (-1.5 * d * d).exp()
                })
                .sum()
        });
        let expect = 3.0 * (std::f64::consts::PI / 1.5).powf(1.5);
        assert!((v - expect).abs() / expect < 1e-2, "got {v}, want {expect}");
    }

    #[test]
    fn coarse_grid_is_smaller() {
        let w = water();
        let light = IntegrationGrid::build(&w, &GridSettings::light());
        let coarse = IntegrationGrid::build(&w, &GridSettings::coarse());
        assert!(coarse.len() < light.len() / 3);
    }

    #[test]
    fn batch_sized_point_clouds_scale_linearly() {
        let s4 = polyethylene(4);
        let s8 = polyethylene(8);
        let p4 = IntegrationGrid::build(&s4, &GridSettings::coarse());
        let p8 = IntegrationGrid::build(&s8, &GridSettings::coarse());
        // Points per atom are constant, so point counts scale with atoms.
        let r = p8.len() as f64 / p4.len() as f64;
        let expect = s8.len() as f64 / s4.len() as f64;
        assert!((r - expect).abs() < 1e-9, "ratio {r} vs {expect}");
    }

    #[test]
    fn weights_are_positive_and_partitions_bounded() {
        let w = water();
        let g = IntegrationGrid::build(&w, &GridSettings::light());
        for p in &g.points {
            assert!(p.weight >= 0.0);
            assert!((0.0..=1.0).contains(&p.partition));
            assert!(p.w_angular > 0.0);
        }
    }
}
