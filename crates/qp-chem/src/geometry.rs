//! Atoms, molecular structures and neighbour search.
//!
//! All coordinates are in Bohr (atomic units), matching the rest of the
//! physics. Neighbour queries use a uniform cell list so that the 200 000-atom
//! polyethylene workloads of the paper's scaling section stay O(N).

use crate::elements::Element;
use qp_linalg::vecops::dist3;
use std::collections::HashMap;

/// An atom: element plus Cartesian position (Bohr).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Chemical element.
    pub element: Element,
    /// Position in Bohr.
    pub position: [f64; 3],
}

impl Atom {
    /// Construct an atom.
    pub fn new(element: Element, position: [f64; 3]) -> Self {
        Atom { element, position }
    }
}

/// A molecular structure: an ordered list of atoms.
#[derive(Debug, Clone, Default)]
pub struct Structure {
    /// The atoms; index = the paper's "global atom ID".
    pub atoms: Vec<Atom>,
}

impl Structure {
    /// Build from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Structure { atoms }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Total electron count (neutral molecule).
    pub fn num_electrons(&self) -> u32 {
        self.atoms.iter().map(|a| a.element.num_electrons()).sum()
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for a in &self.atoms {
            for d in 0..3 {
                lo[d] = lo[d].min(a.position[d]);
                hi[d] = hi[d].max(a.position[d]);
            }
        }
        (lo, hi)
    }

    /// Geometric center.
    pub fn centroid(&self) -> [f64; 3] {
        let mut c = [0.0; 3];
        for a in &self.atoms {
            for d in 0..3 {
                c[d] += a.position[d];
            }
        }
        let n = self.atoms.len().max(1) as f64;
        [c[0] / n, c[1] / n, c[2] / n]
    }

    /// Nucleus-nucleus repulsion energy `Σ_{I<J} Z_I Z_J / R_IJ` (Hartree).
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                let r = dist3(self.atoms[i].position, self.atoms[j].position);
                e += (self.atoms[i].element.z() as f64) * (self.atoms[j].element.z() as f64) / r;
            }
        }
        e
    }

    /// Build a neighbour list: for every atom, the indices of atoms within
    /// `cutoff` Bohr (excluding itself), via a uniform cell list (O(N)).
    pub fn neighbours_within(&self, cutoff: f64) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        if n == 0 {
            return Vec::new();
        }
        let (lo, _hi) = self.bounding_box();
        let cell = cutoff.max(1e-9);
        let key = |p: [f64; 3]| -> (i64, i64, i64) {
            (
                ((p[0] - lo[0]) / cell).floor() as i64,
                ((p[1] - lo[1]) / cell).floor() as i64,
                ((p[2] - lo[2]) / cell).floor() as i64,
            )
        };
        let mut cells: HashMap<(i64, i64, i64), Vec<usize>> = HashMap::new();
        for (i, a) in self.atoms.iter().enumerate() {
            cells.entry(key(a.position)).or_default().push(i);
        }
        let mut out = vec![Vec::new(); n];
        for (i, a) in self.atoms.iter().enumerate() {
            let (cx, cy, cz) = key(a.position);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for dz in -1..=1 {
                        if let Some(members) = cells.get(&(cx + dx, cy + dy, cz + dz)) {
                            for &j in members {
                                if j != i && dist3(a.position, self.atoms[j].position) <= cutoff {
                                    out[i].push(j);
                                }
                            }
                        }
                    }
                }
            }
            out[i].sort_unstable();
        }
        out
    }

    /// Covalent bond list: pairs closer than 1.3 × the sum of covalent radii.
    pub fn bonds(&self) -> Vec<(usize, usize)> {
        let max_r: f64 = self
            .atoms
            .iter()
            .map(|a| a.element.covalent_radius())
            .fold(0.0, f64::max);
        let nb = self.neighbours_within(2.6 * max_r);
        let mut bonds = Vec::new();
        for (i, neigh) in nb.iter().enumerate() {
            for &j in neigh {
                if j > i {
                    let rsum = self.atoms[i].element.covalent_radius()
                        + self.atoms[j].element.covalent_radius();
                    if dist3(self.atoms[i].position, self.atoms[j].position) <= 1.3 * rsum {
                        bonds.push((i, j));
                    }
                }
            }
        }
        bonds
    }

    /// Count atoms per element.
    pub fn formula(&self) -> HashMap<Element, usize> {
        let mut f = HashMap::new();
        for a in &self.atoms {
            *f.entry(a.element).or_insert(0) += 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::water;

    #[test]
    fn water_has_three_atoms_ten_electrons() {
        let w = water();
        assert_eq!(w.len(), 3);
        assert_eq!(w.num_electrons(), 10);
    }

    #[test]
    fn water_bonds_are_two_oh() {
        let w = water();
        let bonds = w.bonds();
        assert_eq!(bonds.len(), 2);
        // Atom 0 is O in our generator.
        assert!(bonds.iter().all(|&(i, _)| i == 0));
    }

    #[test]
    fn neighbour_list_is_symmetric() {
        let w = water();
        let nb = w.neighbours_within(5.0);
        for (i, neigh) in nb.iter().enumerate() {
            for &j in neigh {
                assert!(nb[j].contains(&i), "asymmetry between {i} and {j}");
            }
        }
    }

    #[test]
    fn neighbour_list_matches_brute_force() {
        let w = crate::structures::polyethylene(4);
        let cutoff = 4.0;
        let nb = w.neighbours_within(cutoff);
        for i in 0..w.len() {
            for j in 0..w.len() {
                if i == j {
                    continue;
                }
                let within = dist3(w.atoms[i].position, w.atoms[j].position) <= cutoff;
                assert_eq!(nb[i].contains(&j), within, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn nuclear_repulsion_positive_and_scales() {
        let w = water();
        let e = w.nuclear_repulsion();
        assert!(e > 0.0);
        // Moving atoms apart reduces repulsion.
        let mut stretched = w.clone();
        for a in stretched.atoms.iter_mut() {
            for d in 0..3 {
                a.position[d] *= 2.0;
            }
        }
        assert!(stretched.nuclear_repulsion() < e);
    }

    #[test]
    fn bounding_box_contains_all_atoms() {
        let p = crate::structures::polyethylene(10);
        let (lo, hi) = p.bounding_box();
        for a in &p.atoms {
            for d in 0..3 {
                assert!(a.position[d] >= lo[d] - 1e-12 && a.position[d] <= hi[d] + 1e-12);
            }
        }
    }
}
