//! Deterministic generators for the paper's three biomolecular workloads
//! (Fig. 8): the SARS-CoV-2 RBD (3 006 atoms), the HIV-1 protease ligand
//! (49 atoms), and the H(C₂H₄)ₙH polyethylene chains used for all scaling
//! studies (up to n = 33 335 → 200 012 atoms).
//!
//! We do not ship PDB coordinates; what the evaluation actually consumes is
//! the *statistics* of the geometry — atom density, neighbour counts, basis
//! functions per atom, spatial extent — so the generators reproduce those
//! deterministically (fixed seeds, no `Instant`/entropy).

use crate::elements::Element;
use crate::geometry::{Atom, Structure};

/// Bohr per Ångström.
pub const BOHR_PER_ANGSTROM: f64 = 1.8897259886;

/// A single water molecule (the Fig. 2 illustration system). Atom 0 is O.
pub fn water() -> Structure {
    let a = BOHR_PER_ANGSTROM;
    // Experimental geometry: r(OH) = 0.9572 A, angle 104.52 degrees.
    let r = 0.9572 * a;
    let half = (104.52f64 / 2.0).to_radians();
    Structure::new(vec![
        Atom::new(Element::O, [0.0, 0.0, 0.0]),
        Atom::new(Element::H, [r * half.sin(), r * half.cos(), 0.0]),
        Atom::new(Element::H, [-r * half.sin(), r * half.cos(), 0.0]),
    ])
}

/// H(C₂H₄)ₙH polyethylene: planar zig-zag backbone along +x with the two
/// chain-terminating hydrogens, `6 n + 2` atoms total.
///
/// `n = 5 000` gives the paper's 30 002-atom system; `n = 33 335` its
/// 200 012-atom system.
pub fn polyethylene(n: usize) -> Structure {
    let a = BOHR_PER_ANGSTROM;
    let cc = 1.54 * a; // C-C bond
    let ch = 1.09 * a; // C-H bond
    let theta = 113.0f64.to_radians(); // C-C-C angle
    let dx = cc * (theta / 2.0).sin(); // backbone advance per carbon
    let dy = cc * (theta / 2.0).cos(); // zig-zag amplitude

    let ncarbon = 2 * n;
    let mut atoms = Vec::with_capacity(6 * n + 2);

    // Backbone carbons with their two hydrogens each.
    let hz = ch * (109.5f64 / 2.0).to_radians().sin();
    let hy = ch * (109.5f64 / 2.0).to_radians().cos();
    for i in 0..ncarbon {
        let x = i as f64 * dx;
        let y = if i % 2 == 0 { 0.0 } else { dy };
        atoms.push(Atom::new(Element::C, [x, y, 0.0]));
        // The CH2 hydrogens stick out of the backbone plane (+-z), tilted
        // away from the chain in y.
        let ysign = if i % 2 == 0 { -1.0 } else { 1.0 };
        atoms.push(Atom::new(Element::H, [x, y + ysign * hy, hz]));
        atoms.push(Atom::new(Element::H, [x, y + ysign * hy, -hz]));
    }
    // Terminating hydrogens extend the backbone line.
    let first = [-ch * (theta / 2.0).sin(), -ch * (theta / 2.0).cos(), 0.0];
    atoms.push(Atom::new(Element::H, first));
    let lx = (ncarbon - 1) as f64 * dx;
    let ly = if (ncarbon - 1).is_multiple_of(2) {
        0.0
    } else {
        dy
    };
    let lysign = if (ncarbon - 1).is_multiple_of(2) {
        1.0
    } else {
        -1.0
    };
    atoms.push(Atom::new(
        Element::H,
        [
            lx + ch * (theta / 2.0).sin(),
            ly + lysign * ch * (theta / 2.0).cos(),
            0.0,
        ],
    ));
    Structure::new(atoms)
}

/// Splittable deterministic LCG used by the structure generators.
#[derive(Debug, Clone)]
pub(crate) struct SeededRng(u64);

impl SeededRng {
    pub(crate) fn new(seed: u64) -> Self {
        SeededRng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }
    /// Uniform in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
    /// Uniform in [-1, 1).
    pub(crate) fn next_sym(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }
}

/// A 49-atom HIV-1-protease-ligand-like molecule (paper Fig. 8b, PDB 1a30
/// ligand): a branched organic scaffold with C/N/O heavy atoms and attached
/// hydrogens, 49 atoms, deterministic.
pub fn ligand49() -> Structure {
    let a = BOHR_PER_ANGSTROM;
    let mut rng = SeededRng::new(1930); // "1a30"
    let bond = 1.5 * a;
    // 24 heavy atoms in a self-avoiding walk with short branches, then fill
    // with hydrogens up to 49 atoms (25 H): close to the real ligand's
    // composition (a glutamate-glutamate-(2-methyl)propane peptidomimetic).
    let heavy_elements = [
        Element::C,
        Element::C,
        Element::C,
        Element::N,
        Element::C,
        Element::C,
        Element::O,
        Element::C,
        Element::C,
        Element::N,
        Element::C,
        Element::O,
        Element::C,
        Element::C,
        Element::C,
        Element::O,
        Element::C,
        Element::N,
        Element::C,
        Element::C,
        Element::O,
        Element::C,
        Element::C,
        Element::C,
    ];
    let mut atoms: Vec<Atom> = Vec::with_capacity(49);
    let mut pos = [0.0f64; 3];
    let mut dir = [1.0f64, 0.0, 0.0];
    for (k, &el) in heavy_elements.iter().enumerate() {
        atoms.push(Atom::new(el, pos));
        // Advance the walk, bending deterministically but acceptably
        // tetrahedral; every 6th heavy atom starts a short branch kink.
        let bend = if k % 6 == 5 { 1.4 } else { 0.6 };
        dir = [
            dir[0] + bend * rng.next_sym(),
            dir[1] + bend * rng.next_sym(),
            dir[2] + bend * rng.next_sym(),
        ];
        let n = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
        dir = [dir[0] / n, dir[1] / n, dir[2] / n];
        pos = [
            pos[0] + bond * dir[0],
            pos[1] + bond * dir[1],
            pos[2] + bond * dir[2],
        ];
    }
    // Hydrogens: attach to heavy atoms round-robin at 1.05 A, choosing for
    // each the deterministic direction that maximizes the distance to every
    // already-placed atom (keeps the overlap matrix well conditioned).
    let hbond = 1.05 * a;
    let mut h = 0usize;
    while atoms.len() < 49 {
        let parent = atoms[h % 24].position;
        let mut best: Option<([f64; 3], f64)> = None;
        for trial in 0..24 {
            let phi = 2.399963 * (trial as f64) + 0.35 * h as f64;
            let cost = 1.0 - 2.0 * ((trial as f64 * 0.381966) + 0.09 * h as f64).fract();
            let sint = (1.0 - cost * cost).sqrt();
            let cand = [
                parent[0] + hbond * sint * phi.cos(),
                parent[1] + hbond * sint * phi.sin(),
                parent[2] + hbond * cost,
            ];
            let min_d = atoms
                .iter()
                .map(|at| qp_linalg::vecops::dist3(cand, at.position))
                .fold(f64::INFINITY, f64::min);
            if best.map(|(_, d)| min_d > d).unwrap_or(true) {
                best = Some((cand, min_d));
            }
        }
        atoms.push(Atom::new(Element::H, best.expect("trials").0));
        h += 1;
    }
    Structure::new(atoms)
}

/// An RBD-like pseudo-protein blob with `n_atoms` atoms (paper Fig. 8a uses
/// 3 006). Heavy atoms sit on a jittered cubic lattice inside a ball at
/// protein-like density (~0.1 atoms/Å³ including H); element ratios follow
/// typical protein composition (H ~50 %, C ~32 %, N ~8.5 %, O ~8.5 %, S ~1 %).
pub fn rbd_like(n_atoms: usize) -> Structure {
    let a = BOHR_PER_ANGSTROM;
    let mut rng = SeededRng::new(3006);
    let spacing = 1.9 * a; // mean nearest-neighbour distance ~ bonded
                           // Ball radius so the lattice ball holds n_atoms sites: volume per site
                           // = spacing^3 (simple cubic).
    let vol = n_atoms as f64 * spacing.powi(3);
    // 12% radius margin absorbs lattice discreteness; excess sites are
    // truncated below after sorting by distance.
    let radius = 1.12 * (3.0 * vol / (4.0 * std::f64::consts::PI)).cbrt();
    let kmax = (radius / spacing).ceil() as i64 + 1;

    let mut sites: Vec<[f64; 3]> = Vec::new();
    for ix in -kmax..=kmax {
        for iy in -kmax..=kmax {
            for iz in -kmax..=kmax {
                let p = [
                    ix as f64 * spacing,
                    iy as f64 * spacing,
                    iz as f64 * spacing,
                ];
                if (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt() <= radius {
                    sites.push(p);
                }
            }
        }
    }
    // Sort by distance from origin so truncation keeps the blob compact.
    sites.sort_by(|p, q| {
        let rp = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
        let rq = q[0] * q[0] + q[1] * q[1] + q[2] * q[2];
        rp.partial_cmp(&rq).expect("finite radii")
    });
    assert!(
        sites.len() >= n_atoms,
        "lattice ball too small: {} sites for {} atoms",
        sites.len(),
        n_atoms
    );
    sites.truncate(n_atoms);

    let mut atoms = Vec::with_capacity(n_atoms);
    for (i, site) in sites.iter().enumerate() {
        let jitter = 0.25 * spacing;
        let p = [
            site[0] + jitter * rng.next_sym(),
            site[1] + jitter * rng.next_sym(),
            site[2] + jitter * rng.next_sym(),
        ];
        // Deterministic element assignment by cumulative ratio.
        let u = (i as f64 * 0.6180339887498949).fract();
        let el = if u < 0.50 {
            Element::H
        } else if u < 0.82 {
            Element::C
        } else if u < 0.905 {
            Element::N
        } else if u < 0.99 {
            Element::O
        } else {
            Element::S
        };
        atoms.push(Atom::new(el, p));
    }
    Structure::new(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qp_linalg::vecops::dist3;

    #[test]
    fn polyethylene_atom_count_formula() {
        for n in [1usize, 2, 10, 100] {
            assert_eq!(polyethylene(n).len(), 6 * n + 2, "n = {n}");
        }
    }

    #[test]
    fn paper_scaling_systems_have_published_sizes() {
        // The paper's five strong/weak-scaling systems.
        assert_eq!(polyethylene(2500).len(), 15_002);
        assert_eq!(polyethylene(5000).len(), 30_002);
        assert_eq!(polyethylene(10000).len(), 60_002);
        assert_eq!(polyethylene(19600).len(), 117_602);
        assert_eq!(polyethylene(33335).len(), 200_012);
    }

    #[test]
    fn polyethylene_cc_bond_lengths_correct() {
        let p = polyethylene(5);
        let a = BOHR_PER_ANGSTROM;
        // Carbons are at indices 0, 3, 6, ... (each C followed by 2 H).
        for i in 0..9 {
            let c0 = p.atoms[3 * i].position;
            let c1 = p.atoms[3 * (i + 1)].position;
            assert!((dist3(c0, c1) - 1.54 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn polyethylene_is_deterministic() {
        let p1 = polyethylene(7);
        let p2 = polyethylene(7);
        for (a1, a2) in p1.atoms.iter().zip(p2.atoms.iter()) {
            assert_eq!(a1, a2);
        }
    }

    #[test]
    fn ligand_has_49_atoms_with_cnoh() {
        let l = ligand49();
        assert_eq!(l.len(), 49);
        let f = l.formula();
        assert!(f[&Element::C] >= 10);
        assert!(f[&Element::N] >= 2);
        assert!(f[&Element::O] >= 2);
        assert!(f[&Element::H] >= 20);
    }

    #[test]
    fn ligand_atoms_not_overlapping() {
        let l = ligand49();
        for i in 0..l.len() {
            for j in (i + 1)..l.len() {
                let d = dist3(l.atoms[i].position, l.atoms[j].position);
                assert!(d > 1.3, "atoms {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn rbd_like_count_and_composition() {
        let r = rbd_like(3006);
        assert_eq!(r.len(), 3006);
        let f = r.formula();
        let h = f[&Element::H] as f64 / 3006.0;
        assert!(h > 0.45 && h < 0.55, "H fraction {h}");
        assert!(f.contains_key(&Element::S));
    }

    #[test]
    fn rbd_like_is_blob_shaped() {
        let r = rbd_like(500);
        let (lo, hi) = r.bounding_box();
        let ext: Vec<f64> = (0..3).map(|d| hi[d] - lo[d]).collect();
        // Roughly isotropic: no dimension more than 2x another.
        for d in 0..3 {
            for e in 0..3 {
                assert!(ext[d] / ext[e] < 2.0, "anisotropic blob: {ext:?}");
            }
        }
    }

    #[test]
    fn rbd_like_deterministic() {
        let a = rbd_like(100);
        let b = rbd_like(100);
        for (x, y) in a.atoms.iter().zip(b.atoms.iter()) {
            assert_eq!(x, y);
        }
    }
}

/// A poly-glycine-like helix: heavy backbone atoms on an α-helix curve
/// (radius 2.3 Å, rise 1.5 Å per residue, 100° turn) with one hydrogen per
/// heavy atom. `n_residues` residues × 3 backbone atoms (N, C, C) × 2 = 6
/// atoms per residue. A genuinely 3-D but quasi-1-D workload — the shape
/// between the straight polyethylene chain and the RBD ball, used by the
/// batching/mapping ablations.
pub fn helix(n_residues: usize) -> Structure {
    let a = BOHR_PER_ANGSTROM;
    let radius = 2.3 * a;
    let rise = 1.5 * a;
    let turn = 100.0f64.to_radians();
    let backbone = [Element::N, Element::C, Element::C];
    let mut atoms = Vec::with_capacity(6 * n_residues);
    for res in 0..n_residues {
        for (k, &el) in backbone.iter().enumerate() {
            let t = res as f64 + k as f64 / 3.0;
            let phi = t * turn;
            let p = [radius * phi.cos(), radius * phi.sin(), t * rise];
            atoms.push(Atom::new(el, p));
            // One hydrogen pointing outward.
            let hr = radius + 1.05 * a;
            atoms.push(Atom::new(
                Element::H,
                [hr * phi.cos(), hr * phi.sin(), t * rise],
            ));
        }
    }
    Structure::new(atoms)
}

#[cfg(test)]
mod helix_tests {
    use super::*;
    use qp_linalg::vecops::dist3;

    #[test]
    fn helix_counts_and_extent() {
        let h = helix(20);
        assert_eq!(h.len(), 120);
        let (lo, hi) = h.bounding_box();
        // Quasi-1D along z: z extent far exceeds x/y.
        assert!((hi[2] - lo[2]) > 2.0 * (hi[0] - lo[0]));
        // x/y extents bounded by the helix diameter (+ H shell).
        assert!((hi[0] - lo[0]) < 2.0 * (2.3 + 1.05) * BOHR_PER_ANGSTROM + 1e-9);
    }

    #[test]
    fn helix_atoms_do_not_collide() {
        let h = helix(15);
        for i in 0..h.len() {
            for j in (i + 1)..h.len() {
                assert!(
                    dist3(h.atoms[i].position, h.atoms[j].position) > 1.0,
                    "atoms {i},{j} collide"
                );
            }
        }
    }

    #[test]
    fn helix_composition() {
        let h = helix(10);
        let f = h.formula();
        assert_eq!(f[&Element::N], 10);
        assert_eq!(f[&Element::C], 20);
        assert_eq!(f[&Element::H], 30);
    }
}
