//! Chemical elements and their per-element numerical settings.
//!
//! The paper's workloads contain H, C, N, O and S (biomolecules). Each
//! element carries the data an all-electron NAO code needs: nuclear charge,
//! covalent radius (neighbour detection and structure generation), the
//! confinement radius of its basis functions (the origin of Hamiltonian
//! sparsity) and its shell structure for the two basis settings.

/// A chemical element appearing in the paper's biomolecular systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Hydrogen (Z = 1).
    H,
    /// Carbon (Z = 6).
    C,
    /// Nitrogen (Z = 7).
    N,
    /// Oxygen (Z = 8).
    O,
    /// Phosphorus (Z = 15).
    P,
    /// Sulfur (Z = 16).
    S,
    /// Chlorine (Z = 17).
    Cl,
}

/// One shell of numeric atomic orbitals: principal quantum number `n`,
/// angular momentum `l`, and the Slater exponent of the underlying radial
/// function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shell {
    /// Principal quantum number.
    pub n: u8,
    /// Angular momentum (0 = s, 1 = p, 2 = d).
    pub l: u8,
    /// Slater exponent ζ of the radial function `r^(n-1) e^(-ζ r)`.
    pub zeta: f64,
}

impl Shell {
    /// Number of basis functions contributed: `2l + 1`.
    pub fn num_functions(&self) -> usize {
        2 * self.l as usize + 1
    }
}

impl Element {
    /// All supported elements.
    pub const ALL: [Element; 7] = [
        Element::H,
        Element::C,
        Element::N,
        Element::O,
        Element::P,
        Element::S,
        Element::Cl,
    ];

    /// Nuclear charge.
    pub fn z(self) -> u32 {
        match self {
            Element::H => 1,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::P => 15,
            Element::S => 16,
            Element::Cl => 17,
        }
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::P => "P",
            Element::S => "S",
            Element::Cl => "Cl",
        }
    }

    /// Parse a symbol.
    pub fn from_symbol(s: &str) -> Option<Element> {
        match s {
            "H" => Some(Element::H),
            "C" => Some(Element::C),
            "N" => Some(Element::N),
            "O" => Some(Element::O),
            "P" => Some(Element::P),
            "S" => Some(Element::S),
            "Cl" => Some(Element::Cl),
            _ => None,
        }
    }

    /// Covalent radius in Bohr (from Cordero et al., converted).
    pub fn covalent_radius(self) -> f64 {
        match self {
            Element::H => 0.59,
            Element::C => 1.44,
            Element::N => 1.34,
            Element::O => 1.25,
            Element::P => 2.02,
            Element::S => 1.98,
            Element::Cl => 1.93,
        }
    }

    /// Basis-function confinement (cutoff) radius in Bohr; FHI-aims "light"
    /// settings confine NAOs to ~5 Å ≈ 9.4 Bohr, scaled mildly per element.
    pub fn cutoff_radius(self) -> f64 {
        match self {
            Element::H => 7.0,
            Element::C => 9.0,
            Element::N => 9.0,
            Element::O => 9.0,
            Element::P => 10.0,
            Element::S => 10.0,
            Element::Cl => 10.0,
        }
    }

    /// Number of electrons (= Z for neutral atoms).
    pub fn num_electrons(self) -> u32 {
        self.z()
    }

    /// All-electron shells at "light" settings: the occupied atomic shells.
    ///
    /// Slater exponents follow Slater's screening rules; these are the
    /// radial functions an all-electron minimal NAO basis tabulates.
    pub fn shells_light(self) -> Vec<Shell> {
        match self {
            Element::H => vec![Shell {
                n: 1,
                l: 0,
                zeta: 1.0,
            }],
            Element::C => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 5.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 1.625,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 1.625,
                },
            ],
            Element::N => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 6.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 1.95,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 1.95,
                },
            ],
            Element::O => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 7.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 2.275,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 2.275,
                },
            ],
            Element::P => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 14.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 4.95,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 4.95,
                },
                Shell {
                    n: 3,
                    l: 0,
                    zeta: 1.88,
                },
                Shell {
                    n: 3,
                    l: 1,
                    zeta: 1.88,
                },
            ],
            Element::S => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 15.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 5.425,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 5.425,
                },
                Shell {
                    n: 3,
                    l: 0,
                    zeta: 2.05,
                },
                Shell {
                    n: 3,
                    l: 1,
                    zeta: 2.05,
                },
            ],
            Element::Cl => vec![
                Shell {
                    n: 1,
                    l: 0,
                    zeta: 16.70,
                },
                Shell {
                    n: 2,
                    l: 0,
                    zeta: 5.90,
                },
                Shell {
                    n: 2,
                    l: 1,
                    zeta: 5.90,
                },
                Shell {
                    n: 3,
                    l: 0,
                    zeta: 2.217,
                },
                Shell {
                    n: 3,
                    l: 1,
                    zeta: 2.217,
                },
            ],
        }
    }

    /// "tier2"-like settings: light + one polarization shell. Mirrors the
    /// paper's second basis setting (2 143 vs 1 359 functions for the
    /// HIV-1 ligand).
    pub fn shells_tier2(self) -> Vec<Shell> {
        let mut shells = self.shells_light();
        match self {
            Element::H => shells.push(Shell {
                n: 2,
                l: 1,
                zeta: 1.3,
            }),
            Element::C | Element::N | Element::O => shells.push(Shell {
                n: 3,
                l: 2,
                zeta: 2.0,
            }),
            Element::P | Element::S | Element::Cl => shells.push(Shell {
                n: 3,
                l: 2,
                zeta: 2.2,
            }),
        }
        shells
    }

    /// Number of basis functions at light settings.
    pub fn num_basis_light(self) -> usize {
        self.shells_light().iter().map(Shell::num_functions).sum()
    }

    /// Number of basis functions at tier2 settings.
    pub fn num_basis_tier2(self) -> usize {
        self.shells_tier2().iter().map(Shell::num_functions).sum()
    }

    /// Shell occupations for the neutral ground-state atom, as
    /// `(shell_index_in_light, electrons)` — used to seed the initial density.
    pub fn shell_occupations(self) -> Vec<(usize, f64)> {
        match self {
            Element::H => vec![(0, 1.0)],
            Element::C => vec![(0, 2.0), (1, 2.0), (2, 2.0)],
            Element::N => vec![(0, 2.0), (1, 2.0), (2, 3.0)],
            Element::O => vec![(0, 2.0), (1, 2.0), (2, 4.0)],
            Element::P => vec![(0, 2.0), (1, 2.0), (2, 6.0), (3, 2.0), (4, 3.0)],
            Element::S => vec![(0, 2.0), (1, 2.0), (2, 6.0), (3, 2.0), (4, 4.0)],
            Element::Cl => vec![(0, 2.0), (1, 2.0), (2, 6.0), (3, 2.0), (4, 5.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_and_symbols_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("Xx"), None);
    }

    #[test]
    fn light_basis_counts() {
        // H: 1s -> 1 fn; C/N/O: 1s,2s,2p -> 1+1+3 = 5 fns.
        assert_eq!(Element::H.num_basis_light(), 1);
        assert_eq!(Element::C.num_basis_light(), 5);
        assert_eq!(Element::O.num_basis_light(), 5);
        // S: 1s,2s,2p,3s,3p -> 1+1+3+1+3 = 9.
        assert_eq!(Element::S.num_basis_light(), 9);
    }

    #[test]
    fn tier2_adds_polarization() {
        assert_eq!(Element::H.num_basis_tier2(), 1 + 3); // + 2p
        assert_eq!(Element::C.num_basis_tier2(), 5 + 5); // + 3d
    }

    #[test]
    fn occupations_sum_to_electron_count() {
        for e in Element::ALL {
            let total: f64 = e.shell_occupations().iter().map(|&(_, occ)| occ).sum();
            assert_eq!(total as u32, e.num_electrons(), "element {e:?}");
        }
    }

    #[test]
    fn occupations_fit_shell_capacity() {
        for e in Element::ALL {
            let shells = e.shells_light();
            for (idx, occ) in e.shell_occupations() {
                let cap = 2.0 * (2 * shells[idx].l as u32 + 1) as f64;
                assert!(occ <= cap, "shell {idx} of {e:?} overfilled");
            }
        }
    }
}
