//! Offline drop-in shim for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/tuple/`prop_map`/`collection::vec`
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! seed and case index instead of a minimized input), and generation is
//! driven by a fixed xorshift PRNG seeded from the test name, so failures
//! are deterministic across runs.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed the generator; zero is mapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `proptest! { ... }` — runs each enclosed `#[test] fn` over generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), __rng); )+
                    #[allow(unused_mut)]
                    let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects (skips) the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
