//! Value-generation strategies: ranges, tuples, `prop_map`, and
//! `collection::vec`.

use crate::Rng;
use std::ops::Range;

/// Something that can generate values from a PRNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Blanket impl so `&S` works wherever `S` does.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.end > self.start, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Element-count specification for [`vec`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&u));
            let i = (-4i32..-1).generate(&mut rng);
            assert!((-4..-1).contains(&i));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let v = vec(0u32..10, 2usize..6).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
        }
        let v = vec(0u32..10, 4usize).generate(&mut rng);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = Rng::new(11);
        let s = (0usize..10, -1.0f64..1.0).prop_map(|(i, x)| i as f64 + x.abs());
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..11.0).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = Rng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = Rng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
