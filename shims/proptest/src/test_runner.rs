//! Case runner: executes a test body over `cases` generated inputs.

use crate::Rng;

/// Run configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Require `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — fails the whole test.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An assumption rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Stable seed from the test name (FNV-1a) so failures reproduce.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive `body` until `config.cases` cases pass, a case fails, or the
/// rejection budget (10× cases) is exhausted.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut Rng) -> Result<(), TestCaseError>,
{
    let seed = seed_from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(10).max(100);
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = Rng::new(seed ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case_index} (seed {seed:#x}) failed: {msg}");
            }
        }
        case_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "failed: boom")]
    fn failure_panics() {
        run_cases(&ProptestConfig::with_cases(5), "t", |rng| {
            if rng.below(2) == 0 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let mut tried = 0u32;
        run_cases(&ProptestConfig::with_cases(5), "t", |_| {
            tried += 1;
            if tried.is_multiple_of(2) {
                Err(TestCaseError::reject("parity"))
            } else {
                Ok(())
            }
        });
        assert!(tried >= 5);
    }
}
