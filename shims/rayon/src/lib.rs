//! Offline drop-in shim for the subset of the `rayon` API this workspace
//! uses.
//!
//! The build environment has no registry access, so the real `rayon` cannot
//! be fetched. This shim keeps the call sites unchanged (`par_iter`,
//! `into_par_iter`, `par_chunks_mut`, …) but executes **sequentially on the
//! calling thread**. That is semantically identical for this workspace:
//! every parallel body is a pure data-parallel map whose results are
//! deterministic and order-independent, and sequential execution keeps
//! thread-local state (e.g. `qp-trace` rank attribution) on the caller.
//!
//! Swap the workspace dependency back to the real crate to restore host
//! parallelism; no call site changes.

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceOps};
}

/// `into_par_iter()` — sequential stand-in returning the std iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Returns the plain sequential iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` on collections that iterate by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The sequential iterator type.
    type Iter: Iterator;
    /// Returns the plain sequential by-reference iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Mutable slice splitters (`par_chunks_mut`, `par_iter_mut`).
pub trait ParallelSliceOps<T> {
    /// Sequential stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// Sequential stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceOps<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_maps() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_zips() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let s: Vec<i32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(s, vec![11, 22, 33]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0usize; 7];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2]);
    }
}
