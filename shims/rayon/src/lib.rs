//! Offline drop-in shim for the subset of the `rayon` API this workspace
//! uses, executing **genuinely in parallel** on the `qp-par` thread pool.
//!
//! The build environment has no registry access, so the real `rayon` cannot
//! be fetched. This shim keeps the call sites unchanged (`par_iter`,
//! `into_par_iter`, `par_chunks_mut`, …) and forwards the work to
//! [`qp_par`]'s chunk-self-scheduling pool. Item order is preserved
//! everywhere (`map`/`collect` write item `i` to slot `i`), so results are
//! bit-identical to sequential execution for the pure data-parallel bodies
//! this workspace runs — the determinism contract `qp-resil` depends on.
//!
//! Adaptors materialize their input up front (a `Vec` of items or
//! references); that cost is negligible against the numeric bodies executed
//! per item, and it is what makes dynamic chunk scheduling trivially
//! deterministic.

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceOps};
}

pub use qp_par::join;

/// A materialized parallel iterator: items are collected, then terminal
/// operations fan out over the `qp-par` pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair item `i` with `other`'s item `i` (shorter side truncates,
    /// matching `Iterator::zip`).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazy map: `f` runs on pool workers at the terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        qp_par::for_each_vec(self.items, f);
    }
}

/// A mapped parallel iterator awaiting its terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Evaluate the map in parallel, preserving item order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        qp_par::map_vec(self.items, self.f).into_iter().collect()
    }

    /// Run the mapped function for its side effects, in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        qp_par::for_each_vec(self.items, |item| g(f(item)));
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Materialize and wrap for parallel execution.
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` on collections that iterate by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: 'a;
    /// Wrap the by-reference view for parallel execution.
    fn par_iter(&'a self) -> ParIter<&'a Self::Item>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutable slice splitters (`par_chunks_mut`, `par_iter_mut`).
pub trait ParallelSliceOps<T> {
    /// Disjoint mutable chunks of `chunk_size`, executed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    /// Per-element mutable parallel iterator.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceOps<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_maps() {
        let _g = qp_par::ThreadLease::at_least(4);
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_zips() {
        let _g = qp_par::ThreadLease::at_least(4);
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let s: Vec<i32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(s, vec![11, 22, 33]);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let _g = qp_par::ThreadLease::at_least(4);
        let mut v = vec![0usize; 7];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn map_collect_preserves_order_at_scale() {
        let _g = qp_par::ThreadLease::at_least(8);
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * i).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let _g = qp_par::ThreadLease::at_least(4);
        let mut v: Vec<i64> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v[99], 198);
    }
}
