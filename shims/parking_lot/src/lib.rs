//! Offline drop-in shim for the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync` primitives.
//!
//! `parking_lot`'s locks do not poison; this shim matches that by ignoring
//! poison errors (a panicking holder's data is still returned), which is the
//! behavior the `qp-mpi` failure-injection tests rely on.

use std::sync::{self, TryLockError};

/// Non-poisoning mutex with the `parking_lot` `lock() -> guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader–writer lock with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable with the `parking_lot` `wait(&mut guard)` API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, re-acquiring the guarded lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the guard out, wait, move the re-acquired guard back in.
        // Safe equivalent: std's wait consumes and returns the guard.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses, re-acquiring the guarded
    /// lock either way. Mirrors `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of a [`Condvar::wait_for`], mirroring `parking_lot`'s type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Replace `*dest` through a consuming closure. Aborts the process if `f`
/// panics mid-swap (the value slot would otherwise be left invalid).
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(dest);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wait_for_notified() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            let r = cv.wait_for(&mut done, std::time::Duration::from_secs(5));
            assert!(!r.timed_out() || *done);
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
