//! Offline drop-in shim for the subset of the `criterion` API this
//! workspace's benches use: `Criterion`, `bench_function`,
//! `benchmark_group`/`bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple wall-clock median over a fixed iteration budget — no
//! statistics, plots, or baselines. By default each benchmark runs a quick
//! smoke pass (handful of iterations) so accidental invocation stays cheap;
//! set `CRITERION_FULL=1` for a larger budget.

use std::time::Instant;

/// Iteration budget: (warmup, measured).
fn budget() -> (u32, u32) {
    if std::env::var_os("CRITERION_FULL").is_some() {
        (10, 50)
    } else {
        (1, 5)
    }
}

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("name", parameter)`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let (warmup, measured) = budget();
        for _ in 0..warmup {
            black_box(routine());
        }
        let mut samples: Vec<f64> = (0..measured)
            .map(|_| {
                let t = Instant::now();
                black_box(routine());
                t.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.nanos_per_iter = samples[samples.len() / 2];
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks (`c.benchmark_group("...")`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for parity; the shim runs once).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark of the group with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Run one named benchmark of the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// End the group (no-op; parity with the real API).
    pub fn finish(self) {}
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    let ns = b.nanos_per_iter;
    if ns >= 1e9 {
        println!("{name:<50} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<50} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<50} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("{name:<50} {ns:>12.1} ns/iter");
    }
}

/// `criterion_group!(name, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("t", |b| {
            b.iter(|| {
                ran = true;
                1 + 1
            })
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::new("b", 4), &4usize, |b, &n| {
            b.iter(|| {
                seen = n;
                n * 2
            })
        });
        g.finish();
        assert_eq!(seen, 4);
    }
}
