//! Integration: the §3.1 memory claims measured across qp-chem → qp-grid →
//! qp-machine on the paper's workload family.

use qp_chem::basis::BasisSettings;
use qp_chem::grids::{GridSettings, IntegrationGrid};
use qp_chem::structures::{polyethylene, rbd_like};
use qp_grid::batch::batches_from_grid;
use qp_grid::footprint::{analyze, global_csr_bytes, per_atom_basis, per_atom_cutoff};
use qp_grid::mapping::{LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};

fn stats_grid() -> GridSettings {
    GridSettings {
        n_radial: 4,
        r_min: 0.1,
        r_max: 6.0,
        max_angular: 6,
        min_angular: 6,
        partition_cutoff: 6.0,
    }
}

#[test]
fn memory_explosion_scenario_of_section_533() {
    // §5.3.3: "the Hamiltonian matrix for 50000 atoms requires approximately
    // 16 GB memory (assume two basis functions per atom and 10% sparsity),
    // exceeding typical per-process memory capacity (e.g., 4GB on HPC #2)."
    // Exactly that arithmetic: (2 x 50000)^2 x 10% x 16 B = 16 GB.
    let nb: u128 = 2 * 50_000;
    let csr_bytes = nb * nb / 10 * 16;
    // "approximately 16 GB": 1.6e10 bytes on the nose.
    assert_eq!(csr_bytes, 16_000_000_000);
    let m = qp_machine::hpc2();
    assert!(
        !m.fits_memory(csr_bytes as usize),
        "must exceed 4 GB/process"
    );
}

#[test]
fn locality_mapping_fits_memory_where_baseline_does_not() {
    // A 6 002-atom chain at 64 ranks: the per-rank dense block fits any
    // budget; the global CSR is orders of magnitude larger.
    let s = polyethylene(1000);
    let grid = IntegrationGrid::build(&s, &stats_grid());
    let batches = batches_from_grid(&grid, 100);
    let basis = per_atom_basis(&s, BasisSettings::Light);
    let cutoffs = per_atom_cutoff(&s);
    let a = LocalityEnhancingMapping.assign(&batches, 64);
    let report = analyze(&s, &batches, &a, 64, &basis, &cutoffs, 8.0);
    assert!(report.global_csr_bytes > 30 * report.max_dense_bytes());
}

#[test]
fn csr_footprint_grows_linearly_dense_blocks_stay_flat() {
    // Weak-scaling memory behaviour: CSR grows with the system; per-rank
    // dense blocks stay constant when atoms/rank is fixed.
    let mut dense = Vec::new();
    let mut csr = Vec::new();
    for (units, ranks) in [(500usize, 32usize), (1000, 64), (2000, 128)] {
        let s = polyethylene(units);
        let grid = IntegrationGrid::build(&s, &stats_grid());
        let batches = batches_from_grid(&grid, 100);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let a = LocalityEnhancingMapping.assign(&batches, ranks);
        let report = analyze(&s, &batches, &a, ranks, &basis, &cutoffs, 8.0);
        dense.push(report.mean_dense_bytes());
        csr.push(report.global_csr_bytes as f64);
    }
    // CSR roughly doubles each step.
    assert!(csr[1] / csr[0] > 1.7 && csr[2] / csr[1] > 1.7, "{csr:?}");
    // Dense per-rank footprint varies little (halo effects only).
    assert!(
        dense[2] / dense[0] < 1.5,
        "dense blocks should stay ~flat: {dense:?}"
    );
}

#[test]
fn blob_and_chain_both_benefit_from_algorithm_1() {
    for s in [polyethylene(500), rbd_like(1500)] {
        let grid = IntegrationGrid::build(&s, &stats_grid());
        let batches = batches_from_grid(&grid, 100);
        let basis = per_atom_basis(&s, BasisSettings::Light);
        let cutoffs = per_atom_cutoff(&s);
        let base = LoadBalancingMapping.assign(&batches, 32);
        let prop = LocalityEnhancingMapping.assign(&batches, 32);
        let rb = analyze(&s, &batches, &base, 32, &basis, &cutoffs, 8.0);
        let rp = analyze(&s, &batches, &prop, 32, &basis, &cutoffs, 8.0);
        assert!(
            rp.mean_dense_bytes() < rb.mean_dense_bytes(),
            "locality must shrink footprints for {} atoms",
            s.len()
        );
    }
}

#[test]
fn fig9a_ratio_reaches_two_orders_of_magnitude() {
    // The headline Fig. 9(a) contrast on a production-shaped chain.
    let s = polyethylene(2000);
    let grid = IntegrationGrid::build(&s, &stats_grid());
    let batches = batches_from_grid(&grid, 100);
    let basis = per_atom_basis(&s, BasisSettings::Light);
    let cutoffs = per_atom_cutoff(&s);
    let prop = LocalityEnhancingMapping.assign(&batches, 256);
    let report = analyze(&s, &batches, &prop, 256, &basis, &cutoffs, 8.0);
    let ratio = report.global_csr_bytes as f64 / report.mean_dense_bytes();
    assert!(
        ratio > 100.0,
        "ratio {ratio} should exceed 2 orders of magnitude"
    );
    // And the raw CSR builder agrees with the report.
    assert_eq!(
        report.global_csr_bytes,
        global_csr_bytes(&s, &basis, &cutoffs)
    );
}
