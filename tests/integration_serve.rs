//! Integration tests for the qp-serve serving layer: protocol round trips
//! over a real TCP socket, the tri-path bit-identity contract (cache =
//! serial = parallel), checkpointed preemption, typed rejection of
//! malformed input, and state-dir recovery.

use qp_serve::json::{parse, Json};
use qp_serve::{Client, ServeError, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn water_request() -> Json {
    parse(r#"{"molecule":{"builtin":"water"}}"#).unwrap()
}

fn start_server(state_dir: Option<std::path::PathBuf>) -> qp_serve::ServerHandle {
    qp_serve::server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir,
        workers: 1,
        slice: Duration::from_millis(250),
    })
    .expect("server starts")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("qp-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The headline invariant: the same request served cold, served from
/// cache, computed directly in-process serially, and computed with a
/// multi-thread pool all produce bit-identical polarizability and SCF
/// energy.
#[test]
fn tri_path_results_are_bit_identical() {
    let handle = start_server(None);
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let cold = client.submit(water_request(), true, false, |_| {}).unwrap();
    assert!(!cold.cached);
    let cold_res = cold.result.expect("cold run returns a result");

    let warm = client.submit(water_request(), true, false, |_| {}).unwrap();
    assert!(warm.cached, "second identical submit must hit the cache");
    let warm_res = warm.result.expect("cache hit returns a result");
    assert_eq!(
        warm_res.to_json().to_string(),
        cold_res.to_json().to_string(),
        "cached bytes differ from cold bytes"
    );

    handle.shutdown();
    handle.join();

    // Direct in-process reference, serial then multi-threaded.
    let req = qp_serve::JobRequest::from_json(&water_request()).unwrap();
    let flag = AtomicBool::new(false);
    let direct = |threads: usize| {
        let _lease = qp_par::ThreadLease::exactly(threads);
        match qp_serve::run_job(&req, None, None, &flag, &mut |_line| {}).unwrap() {
            qp_serve::EngineOutcome::Done(r) => r,
            qp_serve::EngineOutcome::Preempted(_) => panic!("never preempted"),
        }
    };
    let serial = direct(1);
    let parallel = direct(3);
    for (label, r) in [("serial", &serial), ("parallel", &parallel)] {
        assert_eq!(
            r.energy.to_bits(),
            cold_res.energy.to_bits(),
            "{label} SCF energy differs from served"
        );
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    r.alpha[(i, j)].to_bits(),
                    cold_res.alpha[(i, j)].to_bits(),
                    "{label} alpha[{i},{j}] differs from served"
                );
            }
        }
        assert_eq!(
            r.to_json().to_string(),
            cold_res.to_json().to_string(),
            "{label} full record differs from served"
        );
    }
}

/// Preempting a run at iteration boundaries and resuming from its `QPCK`
/// checkpoint must land on the identical bits as the uninterrupted run.
#[test]
fn preempt_resume_is_bit_exact() {
    let req = qp_serve::JobRequest::from_json(&water_request()).unwrap();
    let never = AtomicBool::new(false);
    let uninterrupted = match qp_serve::run_job(&req, None, None, &never, &mut |_| {}).unwrap() {
        qp_serve::EngineOutcome::Done(r) => r,
        _ => panic!("uninterrupted run completes"),
    };

    // Preempt a few iterations into every pass until done; each pass
    // resumes from the previous pass's checkpoint.
    let dir = tmp_dir("preempt");
    let ckpt = dir.join("job.qpck");
    let mut resume: Option<qp_resil::JobCheckpoint> = None;
    let mut passes = 0;
    let resumed = loop {
        passes += 1;
        assert!(passes < 100, "preempt/resume loop did not converge");
        let preempt = AtomicBool::new(false);
        let mut lines_this_pass = 0usize;
        let outcome = {
            let mut progress = |_line: &str| {
                lines_this_pass += 1;
                if lines_this_pass >= 3 {
                    preempt.store(true, Ordering::Relaxed);
                }
            };
            qp_serve::run_job(&req, resume.take(), Some(&ckpt), &preempt, &mut progress).unwrap()
        };
        match outcome {
            qp_serve::EngineOutcome::Done(r) => break r,
            qp_serve::EngineOutcome::Preempted(c) => {
                // The checkpoint round-trips through its on-disk form too.
                let from_disk = qp_resil::JobCheckpoint::load(&ckpt).unwrap();
                assert_eq!(from_disk, *c, "disk checkpoint differs from in-memory");
                resume = Some(*c);
            }
        }
    };
    assert!(passes > 1, "test must actually preempt at least once");
    assert_eq!(
        resumed.to_json().to_string(),
        uninterrupted.to_json().to_string(),
        "preempted-then-resumed result differs from uninterrupted"
    );
    // The engine deletes its checkpoint on completion.
    assert!(!ckpt.exists(), "completed job left a stale checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed input over the socket is rejected with a typed error reply
/// and never reaches the engine; the connection stays usable afterwards.
#[test]
fn malformed_requests_get_typed_errors() {
    let handle = start_server(None);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for bad in [
        r#"{"molecule":{"builtin":"unobtanium"}}"#,
        r#"{"molecule":{"xyz":"9999999999\nboom\n"}}"#,
        r#"{"molecule":{"xyz":"1\nnan\nH NaN 0 0\n"}}"#,
        r#"{"molecule":{"builtin":"water"},"scf":{"tol":-4}}"#,
        r#"{"molecule":{"builtin":"water"},"threads":0}"#,
        r#"{"molecule":{"builtin":"water"},"tenant":""}"#,
    ] {
        let err = client
            .submit(parse(bad).unwrap(), true, false, |_| {})
            .unwrap_err();
        match err {
            ServeError::Remote(msg) => {
                assert!(msg.contains("bad request"), "{bad} -> {msg}")
            }
            other => panic!("{bad} -> unexpected {other}"),
        }
    }
    // The same connection still serves good requests afterwards.
    let ok = client.submit(water_request(), true, false, |_| {}).unwrap();
    assert!(ok.result.is_some());

    // Raw garbage lines get an error reply rather than a hangup.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        writeln!(s, "this is not json").unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        assert!(v
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("malformed"));
    }

    handle.shutdown();
    handle.join();
}

/// Cache stats and fair-share usage are visible through the stats op, and
/// `cache: "bypass"` recomputes without serving from cache — landing on
/// the identical bits anyway.
#[test]
fn stats_reflect_cache_and_tenants() {
    let handle = start_server(None);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let r1 = parse(r#"{"tenant":"alice","molecule":{"builtin":"water"}}"#).unwrap();
    let r2 = parse(r#"{"tenant":"bob","molecule":{"builtin":"water"}}"#).unwrap();
    let bypass =
        parse(r#"{"tenant":"bob","molecule":{"builtin":"water"},"cache":"bypass"}"#).unwrap();

    let a = client.submit(r1, true, false, |_| {}).unwrap();
    assert!(!a.cached);
    // Different tenant, same physics: the cache is shared, because
    // determinism means there is exactly one right answer per request.
    let b = client.submit(r2, true, false, |_| {}).unwrap();
    assert!(b.cached, "tenant identity must not fragment the cache");
    let c = client.submit(bypass, true, false, |_| {}).unwrap();
    assert!(!c.cached, "bypass must recompute");
    assert_eq!(
        c.result.unwrap().to_json().to_string(),
        a.result.unwrap().to_json().to_string(),
        "bypassed recompute must still reproduce the cached bits"
    );

    let stats = client.stats().unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_usize(), Some(1));
    assert_eq!(cache.get("entries").unwrap().as_usize(), Some(1));
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.get("done").unwrap().as_usize(), Some(3));
    assert_eq!(jobs.get("failed").unwrap().as_usize(), Some(0));
    // Both tenants that actually consumed cpu appear in the usage ledger
    // (alice's cold run, bob's bypass; bob's pure cache hit was free).
    let usage = stats.get("usage").unwrap();
    assert!(usage.get("alice").is_some(), "{stats:?}");
    assert!(usage.get("bob").is_some(), "{stats:?}");

    handle.shutdown();
    handle.join();
}

/// Progress streaming delivers per-iteration lines (from the engine) and
/// phase spans (from the qp-trace observer) while the job runs.
#[test]
fn progress_streams_engine_and_span_lines() {
    let handle = start_server(None);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let mut lines = Vec::new();
    let out = client
        .submit(water_request(), true, true, |l| lines.push(l.to_string()))
        .unwrap();
    assert!(out.result.is_some());
    assert!(
        lines.iter().any(|l| l.starts_with("scf iter=")),
        "missing engine scf progress: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("dfpt dir=")),
        "missing engine dfpt progress: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("span phase=")),
        "missing span-observer progress: {lines:?}"
    );

    handle.shutdown();
    handle.join();
}

/// A server restarted on the same state dir recovers completed jobs into
/// the cache (and keeps them addressable), so clients see the same bits
/// across restarts.
#[test]
fn state_dir_recovery_reseeds_cache() {
    let dir = tmp_dir("recovery");

    // First server: run one job to completion.
    let handle = start_server(Some(dir.clone()));
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let first = client.submit(water_request(), true, false, |_| {}).unwrap();
    let first_bytes = first.result.as_ref().unwrap().to_json().to_string();
    handle.shutdown();
    handle.join();

    // Second server on the same state dir: the completed job must be
    // cache-warm (a resubmit hits) and still addressable by id.
    let handle = start_server(Some(dir.clone()));
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let warm = client.submit(water_request(), true, false, |_| {}).unwrap();
    assert!(warm.cached, "recovered state dir must re-seed the cache");
    assert_eq!(warm.result.unwrap().to_json().to_string(), first_bytes);
    let st = client.status(first.job).unwrap();
    assert_eq!(st.get("state").and_then(|s| s.as_str()), Some("done"));
    // Ids keep counting up from the recovered maximum.
    assert!(warm.job > first.job);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
