//! Integration: the resilience acceptance criteria.
//!
//! * A seeded rank crash mid-DFPT is detected, the supervised driver
//!   restarts from its last checkpoint, and the recovered run converges to
//!   the fault-free polarizability — within 1e-8, and in fact bit-exactly,
//!   because checkpoints capture the loop-carried state losslessly and the
//!   rank-ordered collectives replay deterministically.
//! * The same `QP_FAULT` spec reproduces the identical failure/recovery
//!   trace twice (fault event log and final state both match).
//! * Recovery works purely in memory and with on-disk `QPCK` mirroring.

use qp_core::parallel::{parallel_dfpt_direction, CollectiveScheme, MappingKind, ParallelConfig};
use qp_core::resil::{parallel_dfpt_direction_resilient, ResilienceConfig};
use qp_core::scf::{scf, ScfOptions, ScfResult};
use qp_core::system::System;
use qp_core::DfptOptions;
use qp_linalg::DMatrix;
use qp_resil::FaultPlan;
use std::sync::Arc;

fn setup() -> (System, ScfResult) {
    let mut gs = qp_chem::grids::GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    let sys = System::build(
        qp_chem::structures::water(),
        qp_chem::basis::BasisSettings::Light,
        &gs,
        120,
        2,
    );
    let ground = scf(&sys, &ScfOptions::default()).unwrap();
    (sys, ground)
}

fn cfg() -> ParallelConfig {
    ParallelConfig {
        n_ranks: 4,
        ranks_per_node: 2,
        mapping: MappingKind::LocalityEnhancing,
        collectives: CollectiveScheme::Packed,
    }
}

/// Polarizability diagonal element for the direction: `α_JJ = Tr[P¹_J D_J]`.
fn alpha(sys: &System, p1: &DMatrix, dir: usize) -> f64 {
    let dip = qp_core::operators::dipole_matrix(sys, dir);
    p1.trace_product(&dip).unwrap()
}

#[test]
fn seeded_rank_crash_recovers_to_fault_free_polarizability() {
    let (sys, ground) = setup();
    let opts = DfptOptions::default();
    let dir = 2;

    let fault_free = parallel_dfpt_direction(&sys, &ground, dir, &opts, &cfg()).unwrap();

    let spec = "seed=1;crash:rank=1,iter=3,point=dfpt.iter";
    let plan = Arc::new(FaultPlan::parse(spec).unwrap());
    let rcfg = ResilienceConfig {
        checkpoint_interval: 2,
        max_restarts: 3,
        fault: Some(plan.clone()),
        ..ResilienceConfig::default()
    };
    let out = parallel_dfpt_direction_resilient(&sys, &ground, dir, &opts, &cfg(), &rcfg).unwrap();

    assert_eq!(out.stats.restarts, 1, "exactly one injected crash");
    assert_eq!(
        plan.events(),
        vec!["crash rank=1 point=dfpt.iter iter=3"],
        "the planned fault (and only it) fired"
    );
    assert!(out.stats.checkpoints_written > 0);

    // The acceptance bar is 1e-8 on the polarizability; determinism makes
    // the recovered state match bit-for-bit.
    let dev = out.direction.p1.max_abs_diff(&fault_free.p1);
    assert_eq!(dev, 0.0, "recovered P¹ deviates by {dev}");
    let a_ok = alpha(&sys, &fault_free.p1, dir);
    let a_rec = alpha(&sys, &out.direction.p1, dir);
    assert!(
        (a_ok - a_rec).abs() < 1e-8,
        "α after recovery {a_rec} vs fault-free {a_ok}"
    );
}

#[test]
fn same_fault_spec_reproduces_the_identical_trace() {
    let (sys, ground) = setup();
    let opts = DfptOptions::default();
    let spec = "seed=7;crash:rank=any,iter=2";

    let run = || {
        let plan = Arc::new(FaultPlan::parse(spec).unwrap());
        let rcfg = ResilienceConfig {
            checkpoint_interval: 1,
            max_restarts: 2,
            fault: Some(plan.clone()),
            ..ResilienceConfig::default()
        };
        let out =
            parallel_dfpt_direction_resilient(&sys, &ground, 0, &opts, &cfg(), &rcfg).unwrap();
        (plan.events(), out.stats.events.clone(), out.direction.p1)
    };

    let (events_a, recovery_a, p1_a) = run();
    let (events_b, recovery_b, p1_b) = run();
    assert_eq!(events_a, events_b, "fault trace must be reproducible");
    assert_eq!(
        recovery_a, recovery_b,
        "recovery trace must be reproducible"
    );
    assert!(!events_a.is_empty(), "the crash must actually fire");
    assert_eq!(p1_a.max_abs_diff(&p1_b), 0.0, "bit-identical final state");
}

#[test]
fn disk_checkpoints_survive_corruption_detection_and_restart() {
    let (sys, ground) = setup();
    let opts = DfptOptions::default();
    let dir_path = std::env::temp_dir().join("qp_resil_integration_disk");
    std::fs::create_dir_all(&dir_path).unwrap();

    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir_path.clone()),
        checkpoint_interval: 2,
        max_restarts: 1,
        ..ResilienceConfig::default()
    };
    let first = parallel_dfpt_direction_resilient(&sys, &ground, 1, &opts, &cfg(), &rcfg).unwrap();
    let ck_file = dir_path.join("dfpt_dir1.qpck");
    assert!(ck_file.exists(), "checkpoint mirrored to disk");

    // Restarting from the on-disk checkpoint replays the tail bit-exactly.
    let restart = ResilienceConfig {
        restart: true,
        ..rcfg.clone()
    };
    let resumed =
        parallel_dfpt_direction_resilient(&sys, &ground, 1, &opts, &cfg(), &restart).unwrap();
    assert_eq!(resumed.direction.p1.max_abs_diff(&first.direction.p1), 0.0);
    assert_eq!(resumed.direction.iterations, first.direction.iterations);

    // A corrupted checkpoint must be rejected by the checksum with a clean
    // error, not silently resumed from.
    let mut bytes = std::fs::read(&ck_file).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0x01;
    std::fs::write(&ck_file, &bytes).unwrap();
    let out = parallel_dfpt_direction_resilient(&sys, &ground, 1, &opts, &cfg(), &restart);
    assert!(
        matches!(out, Err(qp_core::CoreError::Checkpoint(_))),
        "corrupted checkpoint must surface cleanly: {out:?}"
    );
    std::fs::remove_dir_all(&dir_path).ok();
}

#[test]
fn message_drop_is_survived_by_the_supervisor() {
    // A dropped point-to-point message surfaces as a timeout; the
    // supervisor treats it like any other failure and restarts. The DFPT
    // driver itself is collective-only, so inject into a collective-free
    // p2p exchange under supervision to cover the drop path end to end.
    use qp_mpi::run_spmd_with;
    use qp_resil::recovery::{RecoveryPolicy, Supervisor};

    let plan = Arc::new(FaultPlan::parse("drop:src=0,dst=1,tag=5").unwrap());
    let mut sup = Supervisor::new(RecoveryPolicy {
        max_restarts: 2,
        ranks: 2,
        machine: None,
    });
    let out = sup.run(|_, _| {
        let opts = qp_mpi::SpmdOptions::with_fault(plan.clone())
            .with_timeout(std::time::Duration::from_millis(50));
        run_spmd_with(2, 2, opts, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0, 2.0])?;
                Ok(0.0)
            } else {
                c.recv(0, 5).map(|v| v[0] + v[1])
            }
        })
        .map(|outs| outs[1])
    });
    assert_eq!(out, Ok(3.0), "second attempt's message is delivered");
    assert_eq!(sup.stats().restarts, 1);
    assert_eq!(plan.events(), vec!["drop src=0 dst=1 tag=5 nth=1"]);
}
