//! End-to-end integration: geometry → basis → grid → SCF → DFPT →
//! polarizability, plus parallel-vs-serial agreement — the full Fig. 1
//! pipeline exercised across every crate at once.

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_chem::structures::water;
use qp_core::dfpt::{dfpt, dfpt_direction, DfptOptions};
use qp_core::parallel::{parallel_dfpt_direction, CollectiveScheme, MappingKind, ParallelConfig};
use qp_core::scf::{electronic_dipole, scf, ScfOptions};
use qp_core::system::System;

fn water_system() -> System {
    let mut gs = GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    System::build(water(), BasisSettings::Light, &gs, 150, 2)
}

#[test]
fn full_pipeline_produces_physical_polarizability() {
    let sys = water_system();
    let ground = scf(&sys, &ScfOptions::default()).expect("SCF");
    let resp = dfpt(&sys, &ground, &DfptOptions::default()).expect("DFPT");
    let a = &resp.polarizability;
    // Positive definite diagonal, symmetric, finite anisotropy.
    for d in 0..3 {
        assert!(a[(d, d)] > 0.1, "α[{d}{d}] = {}", a[(d, d)]);
    }
    for i in 0..3 {
        for j in (i + 1)..3 {
            assert!((a[(i, j)] - a[(j, i)]).abs() < 0.05 * a[(0, 0)]);
        }
    }
}

#[test]
fn dfpt_equals_numerical_derivative_of_dipole() {
    // The workspace-level correctness anchor, repeated here as an
    // integration test at a different field strength than the unit test.
    let sys = water_system();
    let ground = scf(&sys, &ScfOptions::default()).expect("SCF");
    let resp = dfpt_direction(&sys, &ground, 1, &DfptOptions::default()).expect("DFPT-y");
    let dip_y = qp_core::operators::dipole_matrix(&sys, 1);
    let alpha_yy = resp.p1.trace_product(&dip_y).expect("square");

    let xi = 1e-3;
    let tight = ScfOptions {
        tol: 1e-10,
        ..ScfOptions::default()
    };
    let plus = scf(
        &sys,
        &ScfOptions {
            field: Some([0.0, xi, 0.0]),
            ..tight
        },
    )
    .expect("SCF(+ξ)");
    let minus = scf(
        &sys,
        &ScfOptions {
            field: Some([0.0, -xi, 0.0]),
            ..tight
        },
    )
    .expect("SCF(-ξ)");
    let fd = (electronic_dipole(&sys, &plus.density)[1]
        - electronic_dipole(&sys, &minus.density)[1])
        / (2.0 * xi);
    assert!(
        (alpha_yy - fd).abs() < 0.02 * fd.abs().max(0.5),
        "DFPT α_yy = {alpha_yy} vs finite-field {fd}"
    );
}

#[test]
fn parallel_and_serial_dfpt_agree_across_schemes() {
    let sys = water_system();
    let ground = scf(&sys, &ScfOptions::default()).expect("SCF");
    let opts = DfptOptions::default();
    let serial = dfpt_direction(&sys, &ground, 0, &opts).expect("serial");
    for (mapping, scheme) in [
        (MappingKind::LoadBalancing, CollectiveScheme::PerRow),
        (MappingKind::LocalityEnhancing, CollectiveScheme::Packed),
        (
            MappingKind::LocalityEnhancing,
            CollectiveScheme::PackedHierarchical,
        ),
    ] {
        let cfg = ParallelConfig {
            n_ranks: 6,
            ranks_per_node: 3,
            mapping,
            collectives: scheme,
        };
        let par = parallel_dfpt_direction(&sys, &ground, 0, &opts, &cfg).expect("parallel");
        assert!(
            par.p1.max_abs_diff(&serial.p1) < 1e-6,
            "{mapping:?}/{scheme:?}: deviation {}",
            par.p1.max_abs_diff(&serial.p1)
        );
    }
}

#[test]
fn instrumented_kernels_match_reference_physics() {
    // qp-cl instrumentation must never change numbers.
    let sys = water_system();
    let ground = scf(&sys, &ScfOptions::default()).expect("SCF");
    let queue = qp_cl::CommandQueue::new(qp_cl::device::sw39010());
    let (n_dense, _) = qp_core::kernels::sumup_phase(
        &queue,
        &sys,
        &ground.density_matrix,
        qp_core::kernels::MatrixAccess::DenseLocal,
    );
    let reference = sys.density_on_grid(&ground.density_matrix);
    for (a, b) in n_dense.iter().zip(reference.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
    // The ground-state density from the converged P integrates to N_e.
    let ne = sys.grid.integrate_values(&n_dense);
    assert!((ne - 10.0).abs() < 0.1, "∫n = {ne}");
}

#[test]
fn scf_energy_is_variational_under_grid_refinement() {
    // Refining the angular grid must not change the energy drastically —
    // catches quadrature-consistency regressions across qp-chem/qp-core.
    let coarse = {
        let mut gs = GridSettings::light();
        gs.n_radial = 20;
        gs.max_angular = 14;
        let sys = System::build(water(), BasisSettings::Light, &gs, 150, 2);
        scf(&sys, &ScfOptions::default())
            .expect("SCF coarse")
            .energy
    };
    let fine = {
        let mut gs = GridSettings::light();
        gs.n_radial = 30;
        gs.max_angular = 38;
        let sys = System::build(water(), BasisSettings::Light, &gs, 150, 2);
        scf(&sys, &ScfOptions::default()).expect("SCF fine").energy
    };
    assert!(
        (coarse - fine).abs() < 0.8,
        "grid sensitivity too large: {coarse} vs {fine}"
    );
}

#[test]
fn polarizability_transforms_as_a_tensor_under_rotation() {
    // Rotate the molecule by 35 degrees about z: the DFPT polarizability
    // must co-rotate, α' = R α Rᵀ. This exercises grids, batching, Poisson,
    // xc and the Sternheimer update under a nontrivial frame change.
    let theta = 35.0f64.to_radians();
    let (c, s) = (theta.cos(), theta.sin());
    let rotate = |p: [f64; 3]| [c * p[0] - s * p[1], s * p[0] + c * p[1], p[2]];

    let base = water();
    let rotated = qp_chem::geometry::Structure::new(
        base.atoms
            .iter()
            .map(|a| qp_chem::geometry::Atom::new(a.element, rotate(a.position)))
            .collect(),
    );

    let gs = GridSettings::light(); // finest grids: rotation error is pure quadrature
    let run = |structure: qp_chem::geometry::Structure| {
        let sys = System::build(structure, BasisSettings::Light, &gs, 150, 4);
        let ground = scf(&sys, &ScfOptions::default()).expect("SCF");
        dfpt(&sys, &ground, &DfptOptions::default())
            .expect("DFPT")
            .polarizability
    };
    let alpha = run(base);
    let alpha_rot = run(rotated);

    // R α Rᵀ computed explicitly.
    let r = qp_linalg::DMatrix::from_vec(3, 3, vec![c, -s, 0.0, s, c, 0.0, 0.0, 0.0, 1.0]).unwrap();
    let expected = r.matmul(&alpha).unwrap().matmul(&r.transpose()).unwrap();
    let dev = alpha_rot.max_abs_diff(&expected);
    // Our largest Lebedev rule is 50 points (degree 11); the response
    // integrands exceed that, so the tensor co-rotates only to ~10 %.
    // (FHI-aims ships 302-point rules; the residual here is a documented
    // grid limitation, not an algorithmic one — see the angular ramp note
    // in qp-chem::grids.)
    let scale = alpha.trace().abs() / 3.0;
    assert!(
        dev < 0.15 * scale.max(0.1),
        "α does not co-rotate: deviation {dev}, scale {scale}"
    );
    // The rotational invariant (trace) is much tighter: within 1%.
    assert!(
        (alpha_rot.trace() - alpha.trace()).abs() < 0.01 * alpha.trace().abs(),
        "trace changed under rotation: {} vs {}",
        alpha_rot.trace(),
        alpha.trace()
    );
}
