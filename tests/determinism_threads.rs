//! Thread-count determinism: the qp-par substrate must produce *bit-identical*
//! results at any thread count, because qp-resil's recovery guarantee replays
//! iterations and compares checkpoints bit-exactly.
//!
//! Every parallel reduction in the stack merges partial results in a fixed
//! order on the caller (never in completion order), and the blocked GEMM
//! accumulates each `C` element over the same ascending k-blocks regardless
//! of how row-blocks are scheduled. These tests pin that contract on the
//! real pipeline: full SCF energy traces and DFPT polarizabilities for the
//! water and 49-atom ligand workloads, run serially and on an 8-worker pool.
//!
//! Comparisons use `f64::to_bits` — not tolerances — so any reordering of
//! floating-point sums fails loudly.

use qp_chem::basis::BasisSettings;
use qp_chem::grids::GridSettings;
use qp_chem::structures::{ligand49, polyethylene, water};
use qp_core::dfpt::{dfpt, dfpt_direction, DfptOptions};
use qp_core::scf::{scf_resumable, ScfOptions};
use qp_core::system::System;
use qp_core::ScreeningMode;

/// One workload's full observable output, as exact bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct RunBits {
    /// Per-iteration SCF total energy (the "energy trace").
    scf_trace: Vec<u64>,
    /// Final SCF energy.
    energy: u64,
    /// Polarizability entries (all 9, or the single probed α_yy).
    alpha: Vec<u64>,
}

fn water_system() -> System {
    let mut gs = GridSettings::light();
    gs.n_radial = 24;
    gs.max_angular = 26;
    System::build(water(), BasisSettings::Light, &gs, 150, 2)
}

/// The ligand at a statistics-grade grid: big enough to exercise every
/// phase kernel over 49 atoms / 145 basis functions, small enough for CI.
fn ligand_system() -> System {
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    System::build(ligand49(), BasisSettings::Light, &gs, 150, 2)
}

fn run_water(threads: usize) -> RunBits {
    let _lease = qp_par::ThreadLease::exactly(threads);
    let sys = water_system();
    let mut trace = Vec::new();
    let ground = scf_resumable(&sys, &ScfOptions::default(), None, &mut |st| {
        trace.push(st.energy.to_bits());
    })
    .expect("SCF");
    let resp = dfpt(&sys, &ground, &DfptOptions::default()).expect("DFPT");
    let alpha = (0..3)
        .flat_map(|i| (0..3).map(move |j| (i, j)))
        .map(|(i, j)| resp.polarizability[(i, j)].to_bits())
        .collect();
    RunBits {
        scf_trace: trace,
        energy: ground.energy.to_bits(),
        alpha,
    }
}

fn run_ligand(threads: usize) -> RunBits {
    let _lease = qp_par::ThreadLease::exactly(threads);
    let sys = ligand_system();
    let opts = ScfOptions {
        max_iter: 80,
        tol: 1e-6,
        mixing: 0.1,
        field: None,
        smearing: Some(0.02),
        pulay: Some(6),
    };
    let mut trace = Vec::new();
    let ground = scf_resumable(&sys, &opts, None, &mut |st| {
        trace.push(st.energy.to_bits());
    })
    .expect("ligand SCF");
    // One field direction keeps the test inside the CI budget while still
    // driving all four phase kernels (Sumup, Rho, H, DM) plus Sternheimer.
    let resp = dfpt_direction(
        &sys,
        &ground,
        1,
        &DfptOptions {
            max_iter: 80,
            tol: 1e-5,
            mixing: 0.15,
            ..DfptOptions::default()
        },
    )
    .expect("ligand DFPT-y");
    let dip_y = qp_core::operators::dipole_matrix(&sys, 1);
    let alpha_yy = resp.p1.trace_product(&dip_y).expect("square");
    RunBits {
        scf_trace: trace,
        energy: ground.energy.to_bits(),
        alpha: vec![alpha_yy.to_bits()],
    }
}

#[test]
fn water_pipeline_bit_identical_1_vs_8_threads() {
    let serial = run_water(1);
    let parallel = run_water(8);
    assert!(!serial.scf_trace.is_empty(), "trace must record iterations");
    assert_eq!(serial, parallel);
}

#[test]
fn ligand_polarizability_bit_identical_1_vs_8_threads() {
    let serial = run_ligand(1);
    let parallel = run_ligand(8);
    assert!(!serial.scf_trace.is_empty(), "trace must record iterations");
    assert_eq!(serial, parallel);
}

/// Full SCF + DFPT on a polyethylene trimer, screened vs dense, at 1, 2 and
/// 8 threads. The screened assembly skips only contributions that are exactly
/// ±0.0, so the entire pipeline — energy trace, final energy, polarizability
/// element — must match the dense path bit-for-bit at every thread count, and
/// all six runs must agree with each other.
fn run_polymer(threads: usize, mode: ScreeningMode) -> RunBits {
    let _lease = qp_par::ThreadLease::exactly(threads);
    let mut gs = GridSettings::coarse();
    gs.n_radial = 8;
    gs.max_angular = 6;
    gs.min_angular = 6;
    // n = 3 monomers → 20 atoms: above the auto-screening threshold, small
    // enough to run the six-run matrix inside the CI budget.
    let sys =
        System::build_with_screening(polyethylene(3), BasisSettings::Light, &gs, 150, 2, mode);
    let opts = ScfOptions {
        max_iter: 80,
        tol: 1e-6,
        mixing: 0.1,
        field: None,
        smearing: Some(0.02),
        pulay: Some(6),
    };
    let mut trace = Vec::new();
    let ground = scf_resumable(&sys, &opts, None, &mut |st| {
        trace.push(st.energy.to_bits());
    })
    .expect("polymer SCF");
    let resp = dfpt_direction(
        &sys,
        &ground,
        2,
        &DfptOptions {
            max_iter: 80,
            tol: 1e-5,
            mixing: 0.15,
            ..DfptOptions::default()
        },
    )
    .expect("polymer DFPT-z");
    let dip_z = qp_core::operators::dipole_matrix(&sys, 2);
    let alpha_zz = resp.p1.trace_product(&dip_z).expect("square");
    RunBits {
        scf_trace: trace,
        energy: ground.energy.to_bits(),
        alpha: vec![alpha_zz.to_bits()],
    }
}

#[test]
fn polymer_screened_bit_identical_to_dense_at_1_2_8_threads() {
    let reference = run_polymer(1, ScreeningMode::Off);
    assert!(
        !reference.scf_trace.is_empty(),
        "trace must record iterations"
    );
    for threads in [1, 2, 8] {
        assert_eq!(
            reference,
            run_polymer(threads, ScreeningMode::On),
            "screened diverged from dense at {threads} threads"
        );
    }
    assert_eq!(
        reference,
        run_polymer(8, ScreeningMode::Off),
        "dense path not thread-deterministic"
    );
}

/// The SIMD microkernel must be an exact drop-in for the scalar one: the
/// full ligand pipeline on an 8-worker pool (coarsened regions, fused
/// density writes, planned Hartree evaluation) is compared bit-for-bit
/// between the two GEMM microkernels. Safe to flip the global kernel here
/// even with concurrent tests — both kernels produce identical bits, which
/// is exactly what this test pins.
#[test]
fn ligand_pipeline_bit_identical_scalar_vs_simd_microkernel() {
    qp_linalg::gemm::set_microkernel("scalar").expect("scalar kernel always available");
    let scalar = run_ligand(8);
    let simd = match qp_linalg::gemm::set_microkernel("avx2") {
        Ok(_) => Some(run_ligand(8)),
        Err(_) => None,
    };
    qp_linalg::gemm::set_microkernel("auto").expect("restore auto dispatch");
    match simd {
        Some(simd) => assert_eq!(scalar, simd),
        None => eprintln!("host lacks AVX2; SIMD leg skipped (scalar leg still exercised)"),
    }
}
