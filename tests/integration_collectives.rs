//! Integration: the §3.2 collective schemes on larger, irregular payloads —
//! baseline vs packed vs hierarchical must agree to floating-point fidelity
//! while the traffic records show the claimed call-count reductions.

use qp_mpi::hierarchical::hierarchical_allreduce;
use qp_mpi::packed::PackedAllReduce;
use qp_mpi::{run_spmd, CollectiveKind, CommError, ReduceOp};

/// Deterministic pseudo-random payload per (rank, row).
fn payload(rank: usize, row: usize, len: usize) -> Vec<f64> {
    let mut seed = (rank as u64 + 1).wrapping_mul(row as u64 + 17);
    (0..len)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

#[test]
fn packed_is_bitwise_identical_to_per_row() {
    let rows = 40;
    let lens: Vec<usize> = (0..rows).map(|r| 16 + (r * 13) % 120).collect();
    let out = run_spmd(12, 4, |c| {
        let mut reference = Vec::new();
        for (r, &len) in lens.iter().enumerate() {
            reference.push(c.allreduce(ReduceOp::Sum, &payload(c.rank(), r, len))?);
        }
        let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
        for (r, &len) in lens.iter().enumerate() {
            packer.push(&format!("row{r}"), payload(c.rank(), r, len))?;
        }
        packer.flush()?;
        for (r, reference_row) in reference.iter().enumerate() {
            let packed = packer.take(&format!("row{r}")).expect("flushed");
            for (a, b) in packed.iter().zip(reference_row.iter()) {
                if a.to_bits() != b.to_bits() {
                    return Err(CommError::Mismatch("bitwise divergence"));
                }
            }
        }
        Ok(true)
    })
    .expect("spmd run");
    assert!(out.into_iter().all(|b| b));
}

#[test]
fn hierarchical_matches_flat_within_ulps() {
    let out = run_spmd(12, 4, |c| {
        let data = payload(c.rank(), 7, 500);
        let flat = c.allreduce(ReduceOp::Sum, &data)?;
        let hier = hierarchical_allreduce(c, "big", ReduceOp::Sum, &data)?;
        let max_rel = flat
            .iter()
            .zip(hier.iter())
            .map(|(a, b)| (a - b).abs() / a.abs().max(1e-30))
            .fold(0.0f64, f64::max);
        Ok(max_rel)
    })
    .expect("spmd run");
    for dev in out {
        assert!(dev < 1e-12, "hierarchical deviates {dev}");
    }
}

#[test]
fn call_counts_match_the_paper_arithmetic() {
    // 512 rows packed at the 30 MB budget -> 1 packed call (the paper's
    // "packing every 512 MPIAllReduce invocations into one").
    run_spmd(8, 4, |c| {
        let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
        for r in 0..512 {
            packer.push(&format!("r{r}"), vec![1.0; 4000])?; // 32 KB rows
        }
        packer.flush()?;
        assert_eq!(packer.flushes(), 1);
        c.barrier()?;
        if c.rank() == 0 {
            let log = c.traffic();
            assert_eq!(log.calls_of(CollectiveKind::PackedAllReduce), 1);
            let packed_bytes = log
                .snapshot()
                .iter()
                .find(|r| r.kind == CollectiveKind::PackedAllReduce)
                .unwrap()
                .bytes_per_rank;
            assert_eq!(packed_bytes, 512 * 4000 * 8);
        }
        Ok(())
    })
    .expect("spmd run");
}

#[test]
fn failure_during_packed_flush_propagates() {
    let out = run_spmd(4, 2, |c| {
        let mut packer = PackedAllReduce::new(c, ReduceOp::Sum);
        packer.push("x", vec![1.0; 8])?;
        if c.rank() == 3 {
            c.inject_failure();
            return Err(CommError::RankFailed);
        }
        packer.flush()?;
        Ok(())
    });
    assert_eq!(out, Err(CommError::RankFailed));
}

#[test]
fn oversubscribed_world_works() {
    // 64 ranks on one core: collectives must still terminate and agree.
    let out = run_spmd(64, 8, |c| {
        let v = c.allreduce(ReduceOp::Sum, &[1.0])?;
        let h = hierarchical_allreduce(c, "o", ReduceOp::Sum, &[1.0])?;
        Ok((v[0], h[0]))
    })
    .expect("spmd run");
    for (v, h) in out {
        assert_eq!(v, 64.0);
        assert_eq!(h, 64.0);
    }
}
