//! Property-based tests (proptest) on the workspace's core data structures
//! and invariants.

use proptest::prelude::*;
use qp_chem::harmonics::{lm_from_index, lm_index};
use qp_chem::multipole::adams_moulton_cumulative;
use qp_chem::spline::CubicSpline;
use qp_grid::batch::{make_batches, total_points, BatchPoint};
use qp_grid::mapping::{rank_loads, LoadBalancingMapping, LocalityEnhancingMapping, TaskMapping};
use qp_linalg::{CsrMatrix, DMatrix};
use qp_mpi::packed::PackedAllReduce;
use qp_mpi::{run_spmd, ReduceOp};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<BatchPoint>> {
    prop::collection::vec(
        (
            -100.0f64..100.0,
            -100.0f64..100.0,
            -100.0f64..100.0,
            0u32..64,
        ),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, z, atom))| BatchPoint {
                position: [x, y, z],
                atom,
                grid_index: i as u32,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batching_partitions_points(points in arb_points(800), max_batch in 1usize..200) {
        let n = points.len();
        let batches = make_batches(points, max_batch);
        prop_assert_eq!(total_points(&batches), n);
        let mut seen = vec![false; n];
        for b in &batches {
            prop_assert!(b.len() <= max_batch);
            for p in &b.points {
                prop_assert!(!seen[p.grid_index as usize]);
                seen[p.grid_index as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn mappings_assign_every_batch_to_valid_rank(
        points in arb_points(600),
        max_batch in 5usize..100,
        n_procs in 1usize..17,
    ) {
        let batches = make_batches(points, max_batch);
        for strategy in [
            &LoadBalancingMapping as &dyn TaskMapping,
            &LocalityEnhancingMapping as &dyn TaskMapping,
        ] {
            let a = strategy.assign(&batches, n_procs);
            prop_assert_eq!(a.len(), batches.len());
            prop_assert!(a.iter().all(|&r| r < n_procs));
            let loads = rank_loads(&batches, &a, n_procs);
            prop_assert_eq!(loads.iter().sum::<usize>(), total_points(&batches));
        }
    }

    #[test]
    fn locality_mapping_balances_when_batches_abound(
        points in arb_points(2000),
        n_procs in 2usize..9,
    ) {
        let batches = make_batches(points, 40);
        prop_assume!(batches.len() >= 4 * n_procs);
        let a = LocalityEnhancingMapping.assign(&batches, n_procs);
        let loads = rank_loads(&batches, &a, n_procs);
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        prop_assert!(min > 0.0);
        prop_assert!(max / min < 3.0, "imbalance {}/{}", max, min);
    }

    #[test]
    fn lm_index_bijection(idx in 0usize..1000) {
        let (l, m) = lm_from_index(idx);
        prop_assert_eq!(lm_index(l, m), idx);
        prop_assert!(m.unsigned_abs() as usize <= l);
    }

    #[test]
    fn spline_interpolates_random_knots(
        ys in prop::collection::vec(-50.0f64..50.0, 4..40),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64 * 0.5).collect();
        let s = CubicSpline::natural(xs.clone(), ys.clone());
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn adams_moulton_exact_for_quadratics(
        a in -3.0f64..3.0, b in -3.0f64..3.0, c in -3.0f64..3.0,
        n in 4usize..60,
    ) {
        let h = 0.1;
        let f: Vec<f64> = (0..n).map(|k| {
            let x = k as f64 * h;
            a * x * x + b * x + c
        }).collect();
        let cum = adams_moulton_cumulative(h, &f);
        for (k, &c_k) in cum.iter().enumerate().take(n) {
            let x = k as f64 * h;
            let exact = a * x * x * x / 3.0 + b * x * x / 2.0 + c * x;
            prop_assert!((c_k - exact).abs() < 1e-9, "k = {}", k);
        }
    }

    #[test]
    fn csr_dense_round_trip(
        entries in prop::collection::vec(
            (0usize..12, 0usize..12, -10.0f64..10.0), 0..50,
        ),
    ) {
        // Deduplicate positions (CSR sums duplicates; dense assignment
        // overwrites, so feed unique coordinates).
        let mut map = std::collections::BTreeMap::new();
        for (r, c, v) in entries {
            map.insert((r, c), v);
        }
        let mut dense = DMatrix::zeros(12, 12);
        for (&(r, c), &v) in &map {
            dense[(r, c)] = v;
        }
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn spmv_matches_dense_matvec(
        entries in prop::collection::vec(
            (0usize..8, 0usize..8, -5.0f64..5.0), 1..30,
        ),
        x in prop::collection::vec(-2.0f64..2.0, 8),
    ) {
        let csr = CsrMatrix::from_triplets(8, 8, entries).unwrap();
        let sparse = csr.spmv(&x).unwrap();
        let dense = csr.to_dense().matvec(&x).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn eigen_reconstructs_random_symmetric(vals in prop::collection::vec(-5.0f64..5.0, 10)) {
        // Build a symmetric 4x4 from 10 free entries.
        let mut m = DMatrix::zeros(4, 4);
        let mut it = vals.into_iter();
        for i in 0..4 {
            for j in i..4 {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let dec = qp_linalg::symmetric_eigen(&m).unwrap();
        // Trace and Frobenius norm preserved by the spectrum.
        let tr: f64 = dec.eigenvalues.iter().sum();
        prop_assert!((tr - m.trace()).abs() < 1e-8);
        let fro2: f64 = dec.eigenvalues.iter().map(|e| e * e).sum();
        let fro_m = m.frobenius_norm();
        prop_assert!((fro2.sqrt() - fro_m).abs() < 1e-8);
    }
}

// Packed-collective equivalence over random row structures: run fewer cases
// (each spawns threads).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn packed_allreduce_equals_sequential_for_random_rows(
        lens in prop::collection::vec(1usize..64, 1..20),
        budget_rows in 1usize..8,
    ) {
        let budget = budget_rows * 64 * 8;
        let lens2 = lens.clone();
        let out = run_spmd(4, 2, move |c| {
            let mut reference = Vec::new();
            for (r, &len) in lens2.iter().enumerate() {
                let data: Vec<f64> =
                    (0..len).map(|i| (c.rank() * 31 + r * 7 + i) as f64 * 0.01).collect();
                reference.push(c.allreduce(ReduceOp::Sum, &data)?);
            }
            let mut packer = PackedAllReduce::with_budget(c, ReduceOp::Sum, budget);
            for (r, &len) in lens2.iter().enumerate() {
                let data: Vec<f64> =
                    (0..len).map(|i| (c.rank() * 31 + r * 7 + i) as f64 * 0.01).collect();
                packer.push(&format!("r{r}"), data)?;
            }
            packer.flush()?;
            let mut ok = true;
            for (r, reference_row) in reference.iter().enumerate() {
                let p = packer.take(&format!("r{r}")).expect("flushed");
                ok &= p
                    .iter()
                    .zip(reference_row.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            }
            Ok(ok)
        })
        .expect("spmd");
        prop_assert!(out.into_iter().all(|b| b));
    }

    // The metrics registry embedded in the traffic log is an exact mirror
    // of the raw records: for any random sequence of collectives, the
    // per-kind `mpi.collective.{calls,bytes}` counters equal the sums over
    // the `TrafficRecord`s of that kind.
    #[test]
    fn traffic_metrics_mirror_records_for_random_collectives(
        ops in prop::collection::vec((0u8..5, 1usize..32), 1..12),
    ) {
        use qp_mpi::CollectiveKind;

        let ops2 = ops.clone();
        let out = run_spmd(4, 2, move |c| {
            for &(op, len) in &ops2 {
                let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
                match op {
                    0 => drop(c.allreduce(ReduceOp::Sum, &data)?),
                    1 => drop(c.broadcast(0, data)?),
                    2 => drop(c.allgather(&data)?),
                    3 => c.barrier()?,
                    _ => drop(c.reduce(ReduceOp::Max, 0, &data)?),
                }
            }
            if c.rank() != 0 {
                return Ok(Vec::new());
            }
            // Collectives synchronize, so after the loop every record for
            // the sequence exists; rank 0 audits records vs. counters.
            let records = c.traffic().snapshot();
            let metrics = c.traffic().metrics();
            let kinds = [
                CollectiveKind::AllReduce,
                CollectiveKind::Broadcast,
                CollectiveKind::AllGather,
                CollectiveKind::Barrier,
            ];
            let mut audit = Vec::new();
            for kind in kinds {
                let label = [("kind", kind.as_str())];
                let rec_calls =
                    records.iter().filter(|r| r.kind == kind).count() as u64;
                let rec_bytes: u64 = records
                    .iter()
                    .filter(|r| r.kind == kind)
                    .map(|r| r.bytes_per_rank as u64)
                    .sum();
                let m_calls = metrics
                    .counter_value("mpi.collective.calls", &label)
                    .unwrap_or(0);
                let m_bytes = metrics
                    .counter_value("mpi.collective.bytes", &label)
                    .unwrap_or(0);
                audit.push((kind.as_str(), rec_calls, rec_bytes, m_calls, m_bytes));
            }
            Ok(audit)
        })
        .expect("spmd");
        for (_kind, rec_calls, rec_bytes, m_calls, m_bytes) in
            out.into_iter().flatten()
        {
            prop_assert_eq!(rec_calls, m_calls);
            prop_assert_eq!(rec_bytes, m_bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM-form Sternheimer vs the retained pair-loop oracle.
//
// `sternheimer_response` evaluates `P¹ = C·W·Cᵀ` through two Level-3
// products; `sternheimer_response_pairwise` is the original O(n⁴) scalar
// pair-loop. The two must agree to floating-point roundoff on arbitrary
// spectra — including exactly degenerate levels (`f_p = f_q` pairs are
// skipped by both) and near-degenerate pairs, where the weight
// `(f_p − f_q)/(ε_p − ε_q)` approaches the bounded limit `df/dε`.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_sternheimer_matches_pairwise_oracle(
        // Each gap picks a regime by discriminant: exactly degenerate
        // (0..3), near-degenerate (3..5), or well separated (5..10) —
        // the shim has no `prop_oneof`, so weight the branches by hand.
        raw_gaps in prop::collection::vec((0usize..10, 0.0f64..1.0), 3..11),
        c_vals in prop::collection::vec(-1.0f64..1.0, 121),
        h_vals in prop::collection::vec(-1.0f64..1.0, 121),
        mu_frac in 0.1f64..0.9,
        kt in 0.005f64..0.1,
    ) {
        let gaps: Vec<f64> = raw_gaps
            .iter()
            .map(|&(d, t)| match d {
                0..=2 => 0.0,                      // exactly degenerate
                3..=4 => 1e-9 + t * (1e-6 - 1e-9), // near-degenerate
                _ => 0.01 + t * 0.99,              // well separated
            })
            .collect();
        let nb = gaps.len() + 1;
        let mut eps = vec![-1.0f64];
        for g in &gaps {
            eps.push(eps.last().unwrap() + g);
        }
        // Fermi–Dirac occupations: degenerate levels get exactly equal f,
        // so the `f_p = f_q` skip fires identically in both forms.
        let span = (eps[nb - 1] - eps[0]).max(1e-3);
        let mu = eps[0] + mu_frac * span;
        let occ: Vec<f64> = eps
            .iter()
            .map(|&e| 2.0 / (1.0 + ((e - mu) / kt).exp()))
            .collect();
        let c = DMatrix::from_fn(nb, nb, |i, j| c_vals[i * nb + j]);
        let mut h1 = DMatrix::from_fn(nb, nb, |i, j| h_vals[i * nb + j]);
        h1.symmetrize();

        let gemm = qp_core::dfpt::sternheimer_response(&c, &eps, &occ, &h1);
        let pair = qp_core::dfpt::sternheimer_response_pairwise(&c, &eps, &occ, &h1);

        // Near-degenerate weights scale like 1/gap, so compare relative to
        // the result's own magnitude.
        let scale = pair.frobenius_norm().max(1.0);
        let dev = gemm.max_abs_diff(&pair);
        prop_assert!(
            dev <= 1e-12 * scale,
            "GEMM vs pairwise deviation {dev} at scale {scale} (nb = {nb})"
        );

        // Both forms produce a symmetric response for a symmetric H¹.
        prop_assert!(gemm.max_abs_diff(&gemm.transpose()) <= 1e-11 * scale);
    }
}

// ---------------------------------------------------------------------------
// Fused super-batch density vs the per-batch oracle.
//
// `System::density_on_grid` fans the batches out as one coarsened region
// whose workers write straight into the shared density vector;
// `batch_density` is the per-batch oracle it must reproduce *bit for bit*
// for any density matrix, at any thread count, on either GEMM microkernel.

fn shared_density_system() -> &'static qp_core::System {
    use std::sync::OnceLock;
    static SYS: OnceLock<qp_core::System> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut gs = qp_chem::grids::GridSettings::light();
        gs.n_radial = 16;
        gs.max_angular = 14;
        qp_core::System::build(
            qp_chem::structures::water(),
            qp_chem::basis::BasisSettings::Light,
            &gs,
            40, // small batches → many regions → the fused path really fans out
            2,
        )
    })
}

// ---------------------------------------------------------------------------
// Cutoff-sphere screening vs the dense path.
//
// The screened assembly route (neighbor-pair block scatter, per-batch
// basis subsets, restricted Sternheimer contractions) must be
// *bit-identical* to the dense path on any geometry: contributions it
// skips are exactly ±0.0, and adding or dropping exact zeros never
// changes a +0.0-seeded accumulator. Random geometries sweep from
// pathological all-overlapping clusters (every cutoff sphere contains
// every atom — screening prunes nothing) to stretched chains where most
// pairs drop.

fn random_structure(seed: u64, natoms: usize, spread: f64) -> qp_chem::geometry::Structure {
    use qp_chem::elements::Element;
    use qp_chem::geometry::{Atom, Structure};
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        z as f64 / u64::MAX as f64
    };
    let atoms = (0..natoms)
        .map(|_| {
            let e = match (next() * 3.0) as usize {
                0 => Element::H,
                1 => Element::C,
                _ => Element::O,
            };
            Atom::new(
                e,
                [
                    (next() - 0.5) * spread,
                    (next() - 0.5) * spread,
                    (next() - 0.5) * spread,
                ],
            )
        })
        .collect();
    Structure::new(atoms)
}

fn screened_test_systems(structure: &qp_chem::geometry::Structure) -> [qp_core::System; 2] {
    let mut gs = qp_chem::grids::GridSettings::coarse();
    gs.n_radial = 6;
    gs.max_angular = 6;
    gs.min_angular = 6;
    [qp_core::ScreeningMode::On, qp_core::ScreeningMode::Off].map(|mode| {
        qp_core::System::build_with_screening(
            structure.clone(),
            qp_chem::basis::BasisSettings::Light,
            &gs,
            40,
            2,
            mode,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn screened_operators_bit_identical_on_random_geometries(
        seed in 0u64..u64::MAX,
        natoms in 4usize..10,
        // 0 → every atom inside every cutoff sphere (worst case for the
        // pruning logic, best stress for the ±0.0 argument); large →
        // genuinely sparse pair structure.
        spread in 0.0f64..40.0,
        threads_pick in 0usize..3,
    ) {
        let structure = random_structure(seed, natoms, spread);
        let [scr, dense] = screened_test_systems(&structure);
        prop_assert!(scr.screen().is_some());
        prop_assert!(dense.screen().is_none());

        let _lease = qp_par::ThreadLease::exactly([1, 2, 8][threads_pick]);

        let pairs = [
            (qp_core::operators::overlap(&scr), qp_core::operators::overlap(&dense)),
            (qp_core::operators::kinetic(&scr), qp_core::operators::kinetic(&dense)),
            (qp_core::operators::dipole_matrix(&scr, 1), qp_core::operators::dipole_matrix(&dense, 1)),
        ];
        for (i, (a, b)) in pairs.iter().enumerate() {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert!(x.to_bits() == y.to_bits(), "operator {i} diverged");
            }
        }

        // Density on the grid with a random symmetric matrix.
        let nb = scr.n_basis();
        let mut state = seed ^ 0xdead_beef;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5
        };
        let mut p = DMatrix::from_fn(nb, nb, |_, _| next());
        p.symmetrize();
        let rho_scr = scr.density_on_grid(&p);
        let rho_dense = dense.density_on_grid(&p);
        for (gi, (a, b)) in rho_scr.iter().zip(rho_dense.iter()).enumerate() {
            prop_assert!(a.to_bits() == b.to_bits(), "density diverged at point {gi}");
        }
    }

    #[test]
    fn neighbor_list_symmetric_and_self_complete(
        seed in 0u64..u64::MAX,
        natoms in 1usize..20,
        spread in 0.0f64..60.0,
    ) {
        let structure = random_structure(seed, natoms, spread);
        let nl = qp_grid::screening::NeighborList::build(&structure);
        prop_assert_eq!(nl.len(), natoms);
        for i in 0..natoms {
            // Every atom overlaps itself (cutoffs are positive)...
            prop_assert!(nl.contains(i, i), "missing self pair {i}");
            // ...and the strict `<` predicate is symmetric in (i, j).
            for j in 0..natoms {
                prop_assert_eq!(nl.contains(i, j), nl.contains(j, i));
            }
        }
        // Sorted, in-range adjacency rows.
        for i in 0..natoms {
            let row = nl.neighbours(i);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(row.iter().all(|&j| (j as usize) < natoms));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fused_density_bit_identical_to_per_batch_oracle(
        seed in 0u64..u64::MAX,
        threads_pick in 0usize..3,
    ) {
        let sys = shared_density_system();
        let nb = sys.n_basis();
        // Deterministic pseudo-random symmetric matrix from the seed
        // (splitmix64), so each case probes a different density matrix
        // without hauling nb² values through the strategy.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 4.0 - 2.0
        };
        let mut p = DMatrix::from_fn(nb, nb, |_, _| next());
        p.symmetrize();

        let _lease = qp_par::ThreadLease::exactly([1, 2, 8][threads_pick]);
        let fused = sys.density_on_grid(&p);

        // Per-batch oracle: serial loop + merge by grid index.
        let mut oracle = vec![0.0f64; sys.grid.len()];
        for batch in sys.batches.iter() {
            let local = sys.batch_density(batch.id, &p);
            for (pi, &v) in local.iter().enumerate() {
                oracle[batch.points[pi].grid_index as usize] = v;
            }
        }
        prop_assert_eq!(fused.len(), oracle.len());
        for (gi, (f, o)) in fused.iter().zip(oracle.iter()).enumerate() {
            prop_assert!(
                f.to_bits() == o.to_bits(),
                "fused density diverged from the per-batch oracle at grid point {gi}"
            );
        }
    }
}
